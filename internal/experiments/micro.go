package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/kernels/blas"
	"multicore/internal/kernels/stream"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/report"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Memory bandwidth scaling (STREAM triad)",
		Paper: "Bandwidth rises almost linearly while first cores activate; second cores are flat or degrade it; the 8-socket system starts far lower.",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Memory bandwidth per core (STREAM triad)",
		Paper: "Per-core bandwidth halves (or worse) when the second core of each socket joins.",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "BLAS-1 DAXPY performance, ACML (aggregate and per core)",
		Paper: "In-cache DAXPY scales with cores; out-of-cache runs collide on the memory link.",
		Run:   func(s Scale) []*report.Table { return runDaxpy(s, blas.ACML) },
	})
	register(Experiment{
		ID:    "fig5",
		Title: "BLAS-1 DAXPY performance per core, vanilla",
		Paper: "One vs two MPI tasks per socket: the second task gains little once vectors leave cache.",
		Run:   func(s Scale) []*report.Table { return runDaxpyPerSocket(s, blas.Vanilla) },
	})
	register(Experiment{
		ID:    "fig6",
		Title: "BLAS-3 DGEMM performance, ACML",
		Paper: "DGEMM is cache-friendly: near-peak rates, aggregate scales with core count.",
		Run:   func(s Scale) []*report.Table { return runDgemm(s, blas.ACML) },
	})
	register(Experiment{
		ID:    "fig7",
		Title: "BLAS-3 DGEMM performance per core, vanilla",
		Paper: "Per-core DGEMM holds up with two tasks per socket even for the unoptimized code.",
		Run:   func(s Scale) []*report.Table { return runDgemmPerSocket(s, blas.Vanilla) },
	})
}

// streamCores lists the paper's activation order: first core of each
// socket, then second cores.
func streamCores(spec *machine.Spec) []topology.CoreID {
	var order []topology.CoreID
	for c := 0; c < spec.Topo.CoresPerSock; c++ {
		for s := 0; s < spec.Topo.NumSockets; s++ {
			cores := spec.Topo.CoresOn(topology.SocketID(s))
			if c < len(cores) {
				order = append(order, cores[c])
			}
		}
	}
	return order
}

// triadAggregate runs the triad on the first n cores of the activation
// order and returns aggregate bandwidth in GB/s.
func triadAggregate(spec *machine.Spec, n int, vecBytes float64) float64 {
	order := streamCores(spec)[:n]
	bindings := make([]affinity.Binding, n)
	for i, c := range order {
		bindings[i] = affinity.Binding{Core: c, MemPolicy: 1 /* LocalAlloc */}
	}
	res := mpi.Run(mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings}, func(r *mpi.Rank) {
		stream.RunTriad(r, stream.Params{VectorBytes: vecBytes, Iters: 2})
	})
	return res.Sum(stream.MetricBandwidth) / units.Giga
}

func figSystems() []*machine.Spec {
	return []*machine.Spec{machine.Tiger(), machine.DMZ(), machine.Longs()}
}

func runFig2(s Scale) []*report.Table {
	vec := 16.0 * units.MB
	if s == Full {
		vec = 64 * units.MB
	}
	t := report.New("Figure 2: aggregate STREAM triad bandwidth (GB/s)",
		"Active cores", "Tiger", "DMZ", "Longs")
	maxCores := 16
	for n := 1; n <= maxCores; n++ {
		cells := []string{fmt.Sprint(n)}
		for _, spec := range figSystems() {
			if n > spec.Topo.NumCores() {
				cells = append(cells, report.NA)
				continue
			}
			cells = append(cells, report.F(triadAggregate(spec, n, vec)))
		}
		t.AddRow(cells...)
	}
	return []*report.Table{t}
}

func runFig3(s Scale) []*report.Table {
	vec := 16.0 * units.MB
	if s == Full {
		vec = 64 * units.MB
	}
	t := report.New("Figure 3: per-core STREAM triad bandwidth (GB/s)",
		"Active cores", "Tiger", "DMZ", "Longs")
	for n := 1; n <= 16; n++ {
		cells := []string{fmt.Sprint(n)}
		for _, spec := range figSystems() {
			if n > spec.Topo.NumCores() {
				cells = append(cells, report.NA)
				continue
			}
			cells = append(cells, report.F(triadAggregate(spec, n, vec)/float64(n)))
		}
		t.AddRow(cells...)
	}
	return []*report.Table{t}
}

// daxpySizes is the vector-length sweep (elements).
func daxpySizes(s Scale) []int {
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22}
	if s == Full {
		sizes = append(sizes, 1<<23, 1<<24)
	}
	return sizes
}

// runTasksOnDMZ runs body on n tasks placed like the paper's DMZ runs
// (spread across sockets first) and returns the result.
func runTasksOnDMZ(n int, body func(*mpi.Rank)) *mpi.Result {
	spec := machine.DMZ()
	order := streamCores(spec)[:n]
	bindings := make([]affinity.Binding, n)
	for i, c := range order {
		bindings[i] = affinity.Binding{Core: c, MemPolicy: 1 /* LocalAlloc */}
	}
	return mpi.Run(mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings}, body)
}

func runDaxpy(s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 4: DAXPY (%s) on DMZ — aggregate and per-core MFlop/s", v),
		"Vector length", "Total (1)", "Total (2)", "Per core (2)", "Total (4)", "Per core (4)")
	for _, n := range daxpySizes(s) {
		row := []string{fmt.Sprint(n)}
		for _, tasks := range []int{1, 2, 4} {
			res := runTasksOnDMZ(tasks, func(r *mpi.Rank) {
				blas.RunDaxpy(r, blas.DaxpyParams{N: n, Variant: v, Iters: 4})
			})
			total := res.Sum(blas.MetricDaxpyFlops) / units.Mega
			if tasks == 1 {
				row = append(row, report.F(total))
			} else {
				row = append(row, report.F(total), report.F(total/float64(tasks)))
			}
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runDaxpyPerSocket(s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 5: DAXPY (%s) per-core MFlop/s — one vs two tasks per socket (DMZ)", v),
		"Vector length", "1 task/socket (2 tasks)", "2 tasks/socket (2 tasks)")
	for _, n := range daxpySizes(s) {
		spread := runTasksOnDMZ(2, func(r *mpi.Rank) { // cores 0 and 2
			blas.RunDaxpy(r, blas.DaxpyParams{N: n, Variant: v, Iters: 4})
		}).Mean(blas.MetricDaxpyFlops)
		packed := runPackedOnDMZ(2, func(r *mpi.Rank) { // cores 0 and 1
			blas.RunDaxpy(r, blas.DaxpyParams{N: n, Variant: v, Iters: 4})
		}).Mean(blas.MetricDaxpyFlops)
		t.AddRow(fmt.Sprint(n), report.F(spread/units.Mega), report.F(packed/units.Mega))
	}
	return []*report.Table{t}
}

// runPackedOnDMZ packs n tasks onto as few sockets as possible.
func runPackedOnDMZ(n int, body func(*mpi.Rank)) *mpi.Result {
	spec := machine.DMZ()
	bindings := make([]affinity.Binding, n)
	for i := 0; i < n; i++ {
		bindings[i] = affinity.Binding{Core: topology.CoreID(i), MemPolicy: 1}
	}
	return mpi.Run(mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings}, body)
}

func dgemmSizes(s Scale) []int {
	sizes := []int{64, 128, 256, 512, 1024}
	if s == Full {
		sizes = append(sizes, 2048)
	}
	return sizes
}

func runDgemm(s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 6: DGEMM (%s) on DMZ — aggregate and per-core GFlop/s", v),
		"Matrix order", "Total (1)", "Total (2)", "Per core (2)", "Total (4)", "Per core (4)")
	for _, n := range dgemmSizes(s) {
		row := []string{fmt.Sprint(n)}
		for _, tasks := range []int{1, 2, 4} {
			res := runTasksOnDMZ(tasks, func(r *mpi.Rank) {
				blas.RunDgemm(r, blas.DgemmParams{N: n, Variant: v, Iters: 1})
			})
			total := res.Sum(blas.MetricDgemmFlops) / units.Giga
			if tasks == 1 {
				row = append(row, report.F(total))
			} else {
				row = append(row, report.F(total), report.F(total/float64(tasks)))
			}
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runDgemmPerSocket(s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 7: DGEMM (%s) per-core GFlop/s — one vs two tasks per socket (DMZ)", v),
		"Matrix order", "1 task/socket (2 tasks)", "2 tasks/socket (2 tasks)")
	for _, n := range dgemmSizes(s) {
		spread := runTasksOnDMZ(2, func(r *mpi.Rank) {
			blas.RunDgemm(r, blas.DgemmParams{N: n, Variant: v, Iters: 1})
		}).Mean(blas.MetricDgemmFlops)
		packed := runPackedOnDMZ(2, func(r *mpi.Rank) {
			blas.RunDgemm(r, blas.DgemmParams{N: n, Variant: v, Iters: 1})
		}).Mean(blas.MetricDgemmFlops)
		t.AddRow(fmt.Sprint(n), report.F(spread/units.Giga), report.F(packed/units.Giga))
	}
	return []*report.Table{t}
}
