package experiments

import (
	"fmt"
	"math"

	"multicore/internal/affinity"
	"multicore/internal/kernels/blas"
	"multicore/internal/kernels/stream"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/report"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Memory bandwidth scaling (STREAM triad)",
		Paper: "Bandwidth rises almost linearly while first cores activate; second cores are flat or degrade it; the 8-socket system starts far lower.",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Memory bandwidth per core (STREAM triad)",
		Paper: "Per-core bandwidth halves (or worse) when the second core of each socket joins.",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "BLAS-1 DAXPY performance, ACML (aggregate and per core)",
		Paper: "In-cache DAXPY scales with cores; out-of-cache runs collide on the memory link.",
		Run:   func(r *Runner, s Scale) []*report.Table { return runDaxpy(r, s, blas.ACML) },
	})
	register(Experiment{
		ID:    "fig5",
		Title: "BLAS-1 DAXPY performance per core, vanilla",
		Paper: "One vs two MPI tasks per socket: the second task gains little once vectors leave cache.",
		Run:   func(r *Runner, s Scale) []*report.Table { return runDaxpyPerSocket(r, s, blas.Vanilla) },
	})
	register(Experiment{
		ID:    "fig6",
		Title: "BLAS-3 DGEMM performance, ACML",
		Paper: "DGEMM is cache-friendly: near-peak rates, aggregate scales with core count.",
		Run:   func(r *Runner, s Scale) []*report.Table { return runDgemm(r, s, blas.ACML) },
	})
	register(Experiment{
		ID:    "fig7",
		Title: "BLAS-3 DGEMM performance per core, vanilla",
		Paper: "Per-core DGEMM holds up with two tasks per socket even for the unoptimized code.",
		Run:   func(r *Runner, s Scale) []*report.Table { return runDgemmPerSocket(r, s, blas.Vanilla) },
	})
}

// streamCores lists the paper's activation order: first core of each
// socket, then second cores.
func streamCores(spec *machine.Spec) []topology.CoreID {
	var order []topology.CoreID
	for c := 0; c < spec.Topo.CoresPerSock; c++ {
		for s := 0; s < spec.Topo.NumSockets; s++ {
			cores := spec.Topo.CoresOn(topology.SocketID(s))
			if c < len(cores) {
				order = append(order, cores[c])
			}
		}
	}
	return order
}

// triadAggregate runs the triad on the first n cores of the activation
// order and returns aggregate bandwidth in GB/s. Memoized: Figure 3 is
// Figure 2 normalized per core, so the grids share every cell.
func triadAggregate(r *Runner, spec *machine.Spec, n int, vecBytes float64) (float64, error) {
	return runCell(r, CellKey{
		Workload: fmt.Sprintf("stream-triad/%g", vecBytes),
		System:   spec.Topo.Name, Ranks: n,
	}, func() (float64, error) {
		order := streamCores(spec)[:n]
		bindings := make([]affinity.Binding, n)
		for i, c := range order {
			bindings[i] = affinity.Binding{Core: c, MemPolicy: 1 /* LocalAlloc */}
		}
		tr, flush := r.traceCell(cellLabel(fmt.Sprintf("stream-triad-%g", vecBytes),
			spec.Topo.Name, n, affinity.Default))
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := mpi.RunContext(ctx, mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings,
			Trace: tr, Observe: tr != nil}, func(r *mpi.Rank) {
			stream.RunTriad(r, stream.Params{VectorBytes: vecBytes, Iters: 2})
		})
		if err != nil {
			return 0, err
		}
		if flush != nil {
			flush()
		}
		return res.Sum(stream.MetricBandwidth) / units.Giga, nil
	})
}

// triadGrid evaluates the (active cores × system) STREAM grid on the
// worker pool and returns values indexed [n-1][system]; infeasible cells
// (more cores than the system has) are NaN.
func triadGrid(r *Runner, maxCores int, vec float64) [][]float64 {
	specs := figSystems()
	flat := parMap(r, maxCores*len(specs), func(i int) float64 {
		n, spec := i/len(specs)+1, specs[i%len(specs)]
		if n > spec.Topo.NumCores() {
			return math.NaN()
		}
		v, err := triadAggregate(r, spec, n, vec)
		if err != nil {
			return math.NaN()
		}
		return v
	})
	grid := make([][]float64, maxCores)
	for n := 0; n < maxCores; n++ {
		grid[n] = flat[n*len(specs) : (n+1)*len(specs)]
	}
	return grid
}

func figSystems() []*machine.Spec {
	return []*machine.Spec{machine.Tiger(), machine.DMZ(), machine.Longs()}
}

func runFig2(r *Runner, s Scale) []*report.Table {
	vec := 16.0 * units.MB
	if s == Full {
		vec = 64 * units.MB
	}
	t := report.New("Figure 2: aggregate STREAM triad bandwidth (GB/s)",
		"Active cores", "Tiger", "DMZ", "Longs")
	for n, row := range triadGrid(r, 16, vec) {
		cells := []string{fmt.Sprint(n + 1)}
		for _, v := range row {
			if math.IsNaN(v) {
				cells = append(cells, report.NA)
				continue
			}
			cells = append(cells, report.F(v))
		}
		t.AddRow(cells...)
	}
	return []*report.Table{t}
}

func runFig3(r *Runner, s Scale) []*report.Table {
	vec := 16.0 * units.MB
	if s == Full {
		vec = 64 * units.MB
	}
	t := report.New("Figure 3: per-core STREAM triad bandwidth (GB/s)",
		"Active cores", "Tiger", "DMZ", "Longs")
	for n, row := range triadGrid(r, 16, vec) {
		cells := []string{fmt.Sprint(n + 1)}
		for _, v := range row {
			if math.IsNaN(v) {
				cells = append(cells, report.NA)
				continue
			}
			cells = append(cells, report.F(v/float64(n+1)))
		}
		t.AddRow(cells...)
	}
	return []*report.Table{t}
}

// daxpySizes is the vector-length sweep (elements).
func daxpySizes(s Scale) []int {
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22}
	if s == Full {
		sizes = append(sizes, 1<<23, 1<<24)
	}
	return sizes
}

// runTasksOnDMZ runs body on n tasks placed like the paper's DMZ runs
// (spread across sockets first) and returns the result. It panics on a
// run error — Runner.Run converts that into an experiment error.
func runTasksOnDMZ(r *Runner, n int, body func(*mpi.Rank)) *mpi.Result {
	spec := machine.DMZ()
	order := streamCores(spec)[:n]
	bindings := make([]affinity.Binding, n)
	for i, c := range order {
		bindings[i] = affinity.Binding{Core: c, MemPolicy: 1 /* LocalAlloc */}
	}
	ctx, cancel := r.jobContext()
	defer cancel()
	res, err := mpi.RunContext(ctx, mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings}, body)
	if err != nil {
		panic(err)
	}
	return res
}

func runDaxpy(r *Runner, s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 4: DAXPY (%s) on DMZ — aggregate and per-core MFlop/s", v),
		"Vector length", "Total (1)", "Total (2)", "Per core (2)", "Total (4)", "Per core (4)")
	sizes := daxpySizes(s)
	taskCounts := []int{1, 2, 4}
	totals := parMap(r, len(sizes)*len(taskCounts), func(i int) float64 {
		n, tasks := sizes[i/len(taskCounts)], taskCounts[i%len(taskCounts)]
		res := runTasksOnDMZ(r, tasks, func(r *mpi.Rank) {
			blas.RunDaxpy(r, blas.DaxpyParams{N: n, Variant: v, Iters: 4})
		})
		return res.Sum(blas.MetricDaxpyFlops) / units.Mega
	})
	for i, n := range sizes {
		row := []string{fmt.Sprint(n)}
		for j, tasks := range taskCounts {
			total := totals[i*len(taskCounts)+j]
			if tasks == 1 {
				row = append(row, report.F(total))
			} else {
				row = append(row, report.F(total), report.F(total/float64(tasks)))
			}
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runDaxpyPerSocket(r *Runner, s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 5: DAXPY (%s) per-core MFlop/s — one vs two tasks per socket (DMZ)", v),
		"Vector length", "1 task/socket (2 tasks)", "2 tasks/socket (2 tasks)")
	sizes := daxpySizes(s)
	vals := parMap(r, 2*len(sizes), func(i int) float64 {
		n, packed := sizes[i/2], i%2 == 1
		body := func(r *mpi.Rank) {
			blas.RunDaxpy(r, blas.DaxpyParams{N: n, Variant: v, Iters: 4})
		}
		if packed { // cores 0 and 1
			return runPackedOnDMZ(r, 2, body).Mean(blas.MetricDaxpyFlops)
		}
		return runTasksOnDMZ(r, 2, body).Mean(blas.MetricDaxpyFlops) // cores 0 and 2
	})
	for i, n := range sizes {
		t.AddRow(fmt.Sprint(n), report.F(vals[2*i]/units.Mega), report.F(vals[2*i+1]/units.Mega))
	}
	return []*report.Table{t}
}

// runPackedOnDMZ packs n tasks onto as few sockets as possible. Like
// runTasksOnDMZ, it panics on a run error.
func runPackedOnDMZ(r *Runner, n int, body func(*mpi.Rank)) *mpi.Result {
	spec := machine.DMZ()
	bindings := make([]affinity.Binding, n)
	for i := 0; i < n; i++ {
		bindings[i] = affinity.Binding{Core: topology.CoreID(i), MemPolicy: 1}
	}
	ctx, cancel := r.jobContext()
	defer cancel()
	res, err := mpi.RunContext(ctx, mpi.Config{Spec: spec, Impl: mpi.LAM(), Bindings: bindings}, body)
	if err != nil {
		panic(err)
	}
	return res
}

func dgemmSizes(s Scale) []int {
	sizes := []int{64, 128, 256, 512, 1024}
	if s == Full {
		sizes = append(sizes, 2048)
	}
	return sizes
}

func runDgemm(r *Runner, s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 6: DGEMM (%s) on DMZ — aggregate and per-core GFlop/s", v),
		"Matrix order", "Total (1)", "Total (2)", "Per core (2)", "Total (4)", "Per core (4)")
	sizes := dgemmSizes(s)
	taskCounts := []int{1, 2, 4}
	totals := parMap(r, len(sizes)*len(taskCounts), func(i int) float64 {
		n, tasks := sizes[i/len(taskCounts)], taskCounts[i%len(taskCounts)]
		res := runTasksOnDMZ(r, tasks, func(r *mpi.Rank) {
			blas.RunDgemm(r, blas.DgemmParams{N: n, Variant: v, Iters: 1})
		})
		return res.Sum(blas.MetricDgemmFlops) / units.Giga
	})
	for i, n := range sizes {
		row := []string{fmt.Sprint(n)}
		for j, tasks := range taskCounts {
			total := totals[i*len(taskCounts)+j]
			if tasks == 1 {
				row = append(row, report.F(total))
			} else {
				row = append(row, report.F(total), report.F(total/float64(tasks)))
			}
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runDgemmPerSocket(r *Runner, s Scale, v blas.Variant) []*report.Table {
	t := report.New(
		fmt.Sprintf("Figure 7: DGEMM (%s) per-core GFlop/s — one vs two tasks per socket (DMZ)", v),
		"Matrix order", "1 task/socket (2 tasks)", "2 tasks/socket (2 tasks)")
	sizes := dgemmSizes(s)
	vals := parMap(r, 2*len(sizes), func(i int) float64 {
		n, packed := sizes[i/2], i%2 == 1
		body := func(r *mpi.Rank) {
			blas.RunDgemm(r, blas.DgemmParams{N: n, Variant: v, Iters: 1})
		}
		if packed {
			return runPackedOnDMZ(r, 2, body).Mean(blas.MetricDgemmFlops)
		}
		return runTasksOnDMZ(r, 2, body).Mean(blas.MetricDgemmFlops)
	})
	for i, n := range sizes {
		t.AddRow(fmt.Sprint(n), report.F(vals[2*i]/units.Giga), report.F(vals[2*i+1]/units.Giga))
	}
	return []*report.Table{t}
}
