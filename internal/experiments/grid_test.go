package experiments

import (
	"testing"

	"multicore/internal/workload"
)

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("quick"); err != nil || s != Quick {
		t.Errorf("ParseScale(quick) = %v, %v", s, err)
	}
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Errorf("ParseScale(full) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "Quick", "FULL", " quick", "quick ", "medium"} {
		if _, err := ParseScale(bad); err == nil {
			t.Errorf("ParseScale(%q) succeeded, want error", bad)
		}
	}
}

func TestWorkloadKey(t *testing.T) {
	cases := []struct {
		spec workload.Spec
		want string
	}{
		{workload.Spec{Name: "cg"}, "cg"},
		{workload.Spec{Name: "amber", Arg: "JAC"}, "amber:JAC"},
		{workload.Spec{Name: "cg", Class: "B"}, "cg[class=B]"},
		{workload.Spec{Name: "lammps", Arg: "lj", Steps: 7}, "lammps:lj[steps=7]"},
		{workload.Spec{Name: "stream", N: 1 << 20}, "stream[n=1048576]"},
		// Parameter order in the key is fixed: class, steps, n.
		{workload.Spec{Name: "cg", Class: "A", Steps: 3, N: 64}, "cg[class=A][steps=3][n=64]"},
	}
	for _, c := range cases {
		if got := WorkloadKey(c.spec); got != c.want {
			t.Errorf("WorkloadKey(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
	// Zero parameter values are defaults and must not leak into the key,
	// or equal cells would land at different store addresses.
	plain := WorkloadKey(workload.Spec{Name: "cg"})
	zeroed := WorkloadKey(workload.Spec{Name: "cg", Class: "", Steps: 0, N: 0})
	if plain != zeroed {
		t.Errorf("zero-valued params changed the key: %q vs %q", plain, zeroed)
	}
}
