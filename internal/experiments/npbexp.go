package experiments

import (
	"multicore/internal/affinity"
	"multicore/internal/npb"
	"multicore/internal/report"
	"multicore/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "NAS CG and FT vs numactl options on Longs",
		Paper: "One task per socket with localalloc wins; membind and interleave are worst (up to ~2x slower).",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "NAS CG and FT vs numactl options on DMZ",
		Paper: "The simple two-socket system is far less sensitive: default is near-optimal.",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "NAS multi-core speedup (CG, FT)",
		Paper: "CG ~1.07 efficiency at 2 cores falling to 0.25-0.52 at 8-16; FT 0.82-0.88 at 2, 0.42 at 16.",
		Run:   runTable4,
	})
}

// npbClass returns the problem class per scale: class A preserves the
// out-of-cache matrix slices that make placement matter; Full uses the
// paper's class B.
func npbClass(s Scale) npb.Class {
	if s == Full {
		return npb.ClassB
	}
	return npb.ClassA
}

// npbTime runs one NAS kernel (resolved through the workload registry)
// and returns its benchmark time. Results are memoized: Table 2/3's
// Default columns and Table 4's sweep share cells.
func npbTime(r *Runner, kernel string, class npb.Class, system string, ranks int, scheme affinity.Scheme, s Scale) (float64, error) {
	return runCell(r, CellKey{
		Workload: "npb/" + kernel + "/" + string(class),
		System:   system, Ranks: ranks, Scheme: scheme, Scale: s,
	}, func() (float64, error) {
		wl, err := workload.New(workload.Spec{Name: kernel, Class: string(class)})
		if err != nil {
			return 0, err
		}
		res, err := r.runJob("npb-"+kernel+"-"+string(class), system, ranks, scheme, wl.Body)
		if err != nil {
			return 0, err
		}
		return res.Max(wl.Metrics[0].Key), nil
	})
}

func runTable2(r *Runner, s Scale) []*report.Table {
	class := npbClass(s)
	var tables []*report.Table
	for _, kernel := range []string{"cg", "ft"} {
		k := kernel
		tables = append(tables, numactlTable(r,
			"Table 2 ("+k+"): effect of numactl options on NAS "+k+" (Longs), seconds",
			[]sysRanks{{System: "longs", Ranks: []int{2, 4, 8, 16}}},
			func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
				return npbTime(r, k, class, system, ranks, scheme, s)
			}))
	}
	return tables
}

func runTable3(r *Runner, s Scale) []*report.Table {
	class := npbClass(s)
	var tables []*report.Table
	for _, kernel := range []string{"cg", "ft"} {
		k := kernel
		tables = append(tables, numactlTable(r,
			"Table 3 ("+k+"): effect of numactl options on NAS "+k+" (DMZ), seconds",
			[]sysRanks{{System: "dmz", Ranks: []int{2, 4}}},
			func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
				return npbTime(r, k, class, system, ranks, scheme, s)
			}))
	}
	return tables
}

func runTable4(r *Runner, s Scale) []*report.Table {
	class := npbClass(s)
	kernels := []string{"CG", "FT"}
	t := speedupTable(r, "Table 4: NAS multi-core speedup",
		[]sysRanks{
			{System: "dmz", Ranks: []int{2, 4}},
			{System: "longs", Ranks: []int{2, 4, 8, 16}},
			{System: "tiger", Ranks: []int{2}},
		},
		kernels,
		func(system string, ranks int, which int) (float64, error) {
			k := "cg"
			if which == 1 {
				k = "ft"
			}
			return npbTime(r, k, class, system, ranks, affinity.Default, s)
		})
	return []*report.Table{t}
}
