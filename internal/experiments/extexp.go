package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/apps/lammps"
	"multicore/internal/core"
	"multicore/internal/kernels/lmbench"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/npb"
	"multicore/internal/report"
	"multicore/internal/units"
)

func init() {
	register(Experiment{
		ID:    "ext-latency",
		Title: "LMbench lat_mem_rd load-latency curves",
		Paper: "Companion to the Section 3.1 LMbench STREAM runs: cache plateaus, the capacity cliff, and NUMA distance per system.",
		Run:   runExtLatency,
	})
	register(Experiment{
		ID:    "ext-openmp",
		Title: "Hybrid OpenMP+MPI vs pure MPI on NAS FT (Longs)",
		Paper: "Tests the Section 3.4 proposal: OpenMP within each multi-core processor, MPI between sockets.",
		Run:   runExtOpenMP,
	})
}

func runExtLatency(s Scale) []*report.Table {
	t := report.New("LMbench-style dependent-load latency (ns)",
		"Working set", "Tiger local", "DMZ local", "DMZ remote", "Longs local", "Longs 4-hop")
	type cfg struct {
		system string
		policy int // mem.Policy as int to avoid import cycle noise
		bind   []int
	}
	curves := make(map[string][]lmbench.Point)
	collect := func(name, system string, scheme affinity.Scheme, bindNodes []int) {
		res, err := core.Run(core.Job{System: system, Ranks: 1, Scheme: scheme}, func(r *mpi.Rank) {
			pts := lmbench.Run(r, lmbench.Params{})
			for _, p := range pts {
				r.Report(fmt.Sprintf("%s%.0f", lmbench.MetricPrefix, p.WorkingSetBytes), p.LatencySeconds)
			}
		})
		if err != nil {
			panic(err)
		}
		var pts []lmbench.Point
		for size := 4.0 * 1024; size <= 64*1024*1024; size *= 4 {
			key := fmt.Sprintf("%s%.0f", lmbench.MetricPrefix, size)
			pts = append(pts, lmbench.Point{WorkingSetBytes: size, LatencySeconds: res.Max(key)})
		}
		curves[name] = pts
	}
	collect("tiger-local", "tiger", affinity.OneMPILocalAlloc, nil)
	collect("dmz-local", "dmz", affinity.OneMPILocalAlloc, nil)
	collect("dmz-remote", "dmz", affinity.OneMPIMembind, nil)
	collect("longs-local", "longs", affinity.OneMPILocalAlloc, nil)
	collect("longs-far", "longs", affinity.OneMPIMembind, nil)

	ref := curves["dmz-local"]
	for i, p := range ref {
		row := []string{units.Bytes(p.WorkingSetBytes)}
		for _, name := range []string{"tiger-local", "dmz-local", "dmz-remote", "longs-local", "longs-far"} {
			row = append(row, report.F(curves[name][i].LatencySeconds/units.Nanosecond))
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runExtOpenMP(s Scale) []*report.Table {
	class := npb.ClassA
	if s == Full {
		class = npb.ClassB
	}
	t := report.New("NAS FT on Longs: pure MPI vs hybrid OpenMP+MPI",
		"Configuration", "Ranks x threads", "FT time (s)")

	run := func(name string, ranks, threads int, scheme affinity.Scheme) {
		body, err := npb.RunFTHybrid(class, threads)
		if err != nil {
			panic(err)
		}
		res, err := core.Run(core.Job{System: "longs", Ranks: ranks, Scheme: scheme,
			Impl: mpi.MPICH2()}, body)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, fmt.Sprintf("%dx%d", ranks, threads), report.Seconds(res.Max(npb.MetricFTTime)))
	}
	run("pure MPI, all cores", 16, 1, affinity.Default)
	run("pure MPI, one rank/socket", 8, 1, affinity.OneMPILocalAlloc)
	run("hybrid, one rank/socket + 2 threads", 8, 2, affinity.OneMPILocalAlloc)
	return []*report.Table{t}
}

// Scheduler-jitter ablation.
func init() {
	register(Experiment{
		ID:    "ablate-migration",
		Title: "Scheduler jitter (migration/preemption) period sweep",
		Paper: "Models the unbound OS run's hidden cost: each migration evicts a task's working set; cache-resident workloads feel it most.",
		Run:   runAblateMigration,
	})
}

func runAblateMigration(s Scale) []*report.Table {
	t := report.New("Migration-period sweep: LAMMPS chain (cache-friendly) vs LJ (streaming), 8 ranks on Longs",
		"Migration period", "Chain time (s)", "LJ time (s)")
	spec := machine.Longs()
	timeFor := func(bench lammps.Benchmark, period float64) float64 {
		b, err := affinity.Layout(affinity.TwoMPILocalAlloc, spec.Topo, 8)
		if err != nil {
			panic(err)
		}
		cfg := mpi.Config{Spec: spec, Impl: mpi.MPICH2(), Bindings: b,
			OSMigrationPeriod: period}
		res := mpi.Run(cfg, func(r *mpi.Rank) {
			lammps.Run(r, lammps.Params{Bench: bench, Steps: 20})
		})
		return res.Max(lammps.MetricTime)
	}
	periods := []float64{0, 10e-3, 1e-3, 100e-6}
	for _, p := range periods {
		label := "off"
		if p > 0 {
			label = units.Duration(p)
		}
		t.AddRow(label,
			report.Seconds(timeFor(lammps.Chain, p)),
			report.Seconds(timeFor(lammps.LJ, p)))
	}
	return []*report.Table{t}
}

// ext-npb: the EP and MG kernels complete the NAS picture.
func init() {
	register(Experiment{
		ID:    "ext-npb",
		Title: "NAS EP and MG: the scaling envelope around CG/FT",
		Paper: "EP bounds scaling from above (pure compute); MG from below (multigrid bandwidth + latency at every level).",
		Run:   runExtNPB,
	})
}

func runExtNPB(s Scale) []*report.Table {
	class := npb.ClassW
	if s == Full {
		class = npb.ClassA
	}
	t := report.New("NAS EP and MG on Longs: speedup and placement sensitivity",
		"Kernel", "Speedup @8", "Speedup @16", "Membind penalty @8")
	for _, k := range []string{"ep", "mg"} {
		timeFor := func(ranks int, scheme affinity.Scheme) float64 {
			var (
				body func(*mpi.Rank)
				key  string
				err  error
			)
			if k == "ep" {
				body, err = npb.RunEP(class)
				key = npb.MetricEPTime
			} else {
				body, err = npb.RunMG(class)
				key = npb.MetricMGTime
			}
			if err != nil {
				panic(err)
			}
			res, err := core.Run(core.Job{System: "longs", Ranks: ranks, Scheme: scheme,
				Impl: mpi.MPICH2()}, body)
			if err != nil {
				panic(err)
			}
			return res.Max(key)
		}
		t1 := timeFor(1, affinity.Default)
		local8 := timeFor(8, affinity.OneMPILocalAlloc)
		membind8 := timeFor(8, affinity.OneMPIMembind)
		t.AddRow(k,
			report.F(t1/timeFor(8, affinity.Default)),
			report.F(t1/timeFor(16, affinity.Default)),
			report.F(membind8/local8))
	}
	return []*report.Table{t}
}

// ext-cluster: leave the single node, as the paper's terminology section
// anticipates ("a computing system is a collection of nodes").
func init() {
	register(Experiment{
		ID:    "ext-cluster",
		Title: "Scaling beyond the node: NAS CG across DMZ nodes",
		Paper: "The fourth communication class — the system interconnect — joins the paper's three; fabric quality decides whether leaving the node pays.",
		Run:   runExtCluster,
	})
}

func runExtCluster(s Scale) []*report.Table {
	class := npb.ClassA
	if s == Full {
		class = npb.ClassB
	}
	body, err := npb.RunCG(class)
	if err != nil {
		panic(err)
	}
	t := report.New("NAS CG on DMZ nodes (4 ranks per node)",
		"Configuration", "Total ranks", "CG time (s)")
	run := func(name string, nodes int, net *mpi.NetSpec) {
		res, err := core.Run(core.Job{System: "dmz", Ranks: 4,
			Scheme: affinity.TwoMPILocalAlloc, Impl: mpi.MPICH2(),
			Nodes: nodes, Net: net}, body)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, fmt.Sprint(4*max(1, nodes)), report.Seconds(res.Max(npb.MetricCGTime)))
	}
	run("1 node", 1, nil)
	run("2 nodes, RapidArray", 2, mpi.RapidArray())
	run("4 nodes, RapidArray", 4, mpi.RapidArray())
	run("2 nodes, GigE", 2, mpi.GigE())
	run("4 nodes, GigE", 4, mpi.GigE())
	return []*report.Table{t}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
