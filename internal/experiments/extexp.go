package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/apps/lammps"
	"multicore/internal/core"
	"multicore/internal/kernels/lmbench"
	"multicore/internal/machine"
	"multicore/internal/mpi"
	"multicore/internal/npb"
	"multicore/internal/report"
	"multicore/internal/units"
)

func init() {
	register(Experiment{
		ID:    "ext-latency",
		Title: "LMbench lat_mem_rd load-latency curves",
		Paper: "Companion to the Section 3.1 LMbench STREAM runs: cache plateaus, the capacity cliff, and NUMA distance per system.",
		Run:   runExtLatency,
	})
	register(Experiment{
		ID:    "ext-openmp",
		Title: "Hybrid OpenMP+MPI vs pure MPI on NAS FT (Longs)",
		Paper: "Tests the Section 3.4 proposal: OpenMP within each multi-core processor, MPI between sockets.",
		Run:   runExtOpenMP,
	})
}

func runExtLatency(r *Runner, s Scale) []*report.Table {
	t := report.New("LMbench-style dependent-load latency (ns)",
		"Working set", "Tiger local", "DMZ local", "DMZ remote", "Longs local", "Longs 4-hop")
	cfgs := []struct {
		system string
		scheme affinity.Scheme
	}{
		{"tiger", affinity.OneMPILocalAlloc},
		{"dmz", affinity.OneMPILocalAlloc},
		{"dmz", affinity.OneMPIMembind},
		{"longs", affinity.OneMPILocalAlloc},
		{"longs", affinity.OneMPIMembind},
	}
	curves := parMap(r, len(cfgs), func(i int) []lmbench.Point {
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := core.RunContext(ctx, core.Job{System: cfgs[i].system, Ranks: 1, Scheme: cfgs[i].scheme},
			func(r *mpi.Rank) {
				pts := lmbench.Run(r, lmbench.Params{})
				for _, p := range pts {
					r.Report(fmt.Sprintf("%s%.0f", lmbench.MetricPrefix, p.WorkingSetBytes), p.LatencySeconds)
				}
			})
		if err != nil {
			panic(err)
		}
		var pts []lmbench.Point
		for size := 4.0 * 1024; size <= 64*1024*1024; size *= 4 {
			key := fmt.Sprintf("%s%.0f", lmbench.MetricPrefix, size)
			pts = append(pts, lmbench.Point{WorkingSetBytes: size, LatencySeconds: res.Max(key)})
		}
		return pts
	})
	for i, p := range curves[1] {
		row := []string{units.Bytes(p.WorkingSetBytes)}
		for _, curve := range curves {
			row = append(row, report.F(curve[i].LatencySeconds/units.Nanosecond))
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func runExtOpenMP(r *Runner, s Scale) []*report.Table {
	class := npb.ClassA
	if s == Full {
		class = npb.ClassB
	}
	t := report.New("NAS FT on Longs: pure MPI vs hybrid OpenMP+MPI",
		"Configuration", "Ranks x threads", "FT time (s)")

	cases := []struct {
		name           string
		ranks, threads int
		scheme         affinity.Scheme
	}{
		{"pure MPI, all cores", 16, 1, affinity.Default},
		{"pure MPI, one rank/socket", 8, 1, affinity.OneMPILocalAlloc},
		{"hybrid, one rank/socket + 2 threads", 8, 2, affinity.OneMPILocalAlloc},
	}
	rows := parMap(r, len(cases), func(i int) []string {
		c := cases[i]
		body, err := npb.RunFTHybrid(class, c.threads)
		if err != nil {
			panic(err)
		}
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := core.RunContext(ctx, core.Job{System: "longs", Ranks: c.ranks, Scheme: c.scheme,
			Impl: mpi.MPICH2()}, body)
		if err != nil {
			panic(err)
		}
		return []string{c.name, fmt.Sprintf("%dx%d", c.ranks, c.threads),
			report.Seconds(res.Max(npb.MetricFTTime))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

// Scheduler-jitter ablation.
func init() {
	register(Experiment{
		ID:    "ablate-migration",
		Title: "Scheduler jitter (migration/preemption) period sweep",
		Paper: "Models the unbound OS run's hidden cost: each migration evicts a task's working set; cache-resident workloads feel it most.",
		Run:   runAblateMigration,
	})
}

func runAblateMigration(r *Runner, s Scale) []*report.Table {
	t := report.New("Migration-period sweep: LAMMPS chain (cache-friendly) vs LJ (streaming), 8 ranks on Longs",
		"Migration period", "Chain time (s)", "LJ time (s)")
	spec := machine.Longs()
	timeFor := func(bench lammps.Benchmark, period float64) float64 {
		b, err := affinity.Layout(affinity.TwoMPILocalAlloc, spec.Topo, 8)
		if err != nil {
			panic(err)
		}
		cfg := mpi.Config{Spec: spec, Impl: mpi.MPICH2(), Bindings: b,
			OSMigrationPeriod: period}
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := mpi.RunContext(ctx, cfg, func(r *mpi.Rank) {
			lammps.Run(r, lammps.Params{Bench: bench, Steps: 20})
		})
		if err != nil {
			panic(err)
		}
		return res.Max(lammps.MetricTime)
	}
	periods := []float64{0, 10e-3, 1e-3, 100e-6}
	benches := []lammps.Benchmark{lammps.Chain, lammps.LJ}
	times := parMap(r, len(periods)*len(benches), func(i int) float64 {
		return timeFor(benches[i%len(benches)], periods[i/len(benches)])
	})
	for i, p := range periods {
		label := "off"
		if p > 0 {
			label = units.Duration(p)
		}
		t.AddRow(label,
			report.Seconds(times[i*len(benches)]),
			report.Seconds(times[i*len(benches)+1]))
	}
	return []*report.Table{t}
}

// ext-npb: the EP and MG kernels complete the NAS picture.
func init() {
	register(Experiment{
		ID:    "ext-npb",
		Title: "NAS EP and MG: the scaling envelope around CG/FT",
		Paper: "EP bounds scaling from above (pure compute); MG from below (multigrid bandwidth + latency at every level).",
		Run:   runExtNPB,
	})
}

func runExtNPB(r *Runner, s Scale) []*report.Table {
	class := npb.ClassW
	if s == Full {
		class = npb.ClassA
	}
	t := report.New("NAS EP and MG on Longs: speedup and placement sensitivity",
		"Kernel", "Speedup @8", "Speedup @16", "Membind penalty @8")
	kernels := []string{"ep", "mg"}
	cells := []struct {
		ranks  int
		scheme affinity.Scheme
	}{
		{1, affinity.Default},
		{8, affinity.Default},
		{16, affinity.Default},
		{8, affinity.OneMPILocalAlloc},
		{8, affinity.OneMPIMembind},
	}
	times := parMap(r, len(kernels)*len(cells), func(i int) float64 {
		k, c := kernels[i/len(cells)], cells[i%len(cells)]
		var (
			body func(*mpi.Rank)
			key  string
			err  error
		)
		if k == "ep" {
			body, err = npb.RunEP(class)
			key = npb.MetricEPTime
		} else {
			body, err = npb.RunMG(class)
			key = npb.MetricMGTime
		}
		if err != nil {
			panic(err)
		}
		res, err := r.runJob("npb-"+k+"-"+string(class), "longs", c.ranks, c.scheme, body)
		if err != nil {
			panic(err)
		}
		return res.Max(key)
	})
	for i, k := range kernels {
		row := times[i*len(cells) : (i+1)*len(cells)]
		t1, def8, def16, local8, membind8 := row[0], row[1], row[2], row[3], row[4]
		t.AddRow(k,
			report.F(t1/def8),
			report.F(t1/def16),
			report.F(membind8/local8))
	}
	return []*report.Table{t}
}

// ext-cluster: leave the single node, as the paper's terminology section
// anticipates ("a computing system is a collection of nodes").
func init() {
	register(Experiment{
		ID:    "ext-cluster",
		Title: "Scaling beyond the node: NAS CG across DMZ nodes",
		Paper: "The fourth communication class — the system interconnect — joins the paper's three; fabric quality decides whether leaving the node pays.",
		Run:   runExtCluster,
	})
}

func runExtCluster(r *Runner, s Scale) []*report.Table {
	class := npb.ClassA
	if s == Full {
		class = npb.ClassB
	}
	body, err := npb.RunCG(class)
	if err != nil {
		panic(err)
	}
	t := report.New("NAS CG on DMZ nodes (4 ranks per node)",
		"Configuration", "Total ranks", "CG time (s)")
	cases := []struct {
		name  string
		nodes int
		net   *mpi.NetSpec
	}{
		{"1 node", 1, nil},
		{"2 nodes, RapidArray", 2, mpi.RapidArray()},
		{"4 nodes, RapidArray", 4, mpi.RapidArray()},
		{"2 nodes, GigE", 2, mpi.GigE()},
		{"4 nodes, GigE", 4, mpi.GigE()},
	}
	rows := parMap(r, len(cases), func(i int) []string {
		c := cases[i]
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := core.RunContext(ctx, core.Job{System: "dmz", Ranks: 4,
			Scheme: affinity.TwoMPILocalAlloc, Impl: mpi.MPICH2(),
			Nodes: c.nodes, Net: c.net}, body)
		if err != nil {
			panic(err)
		}
		return []string{c.name, fmt.Sprint(4 * max(1, c.nodes)), report.Seconds(res.Max(npb.MetricCGTime))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
