package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// captureTraces renders the experiment on a fresh runner with per-cell
// tracing into dir and returns the trace files' contents by name.
func captureTraces(t *testing.T, e Experiment, dir string, workers int) map[string][]byte {
	t.Helper()
	r := NewRunner(nil, Options{Parallelism: workers, TraceDir: dir})
	renderAll(t, r, e)
	files := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[ent.Name()] = data
	}
	return files
}

// TestTraceFilesSerialParallelIdentical is the tracing arm of the
// determinism regression: per-cell trace files must be byte-identical
// whether the cells run serially or on a many-worker pool. Each cell owns
// a private engine, so its trace depends only on the cell configuration,
// never on pool scheduling.
func TestTraceFilesSerialParallelIdentical(t *testing.T) {
	e, ok := ByID("fig2")
	if !ok {
		t.Fatal("no experiment fig2")
	}

	serial := captureTraces(t, e, t.TempDir(), 1)
	parallel := captureTraces(t, e, t.TempDir(), 8)

	if len(serial) == 0 {
		t.Fatal("no trace files were written")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial wrote %d trace files, parallel %d", len(serial), len(parallel))
	}
	for name, want := range serial {
		got, ok := parallel[name]
		if !ok {
			t.Errorf("parallel run missing trace %s", name)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("trace %s differs between serial (%d bytes) and parallel (%d bytes) runs",
				name, len(want), len(got))
		}
	}
}

// TestTraceCellDedup checks that a label is captured once per trace-dir
// epoch: artifacts sharing a cell produce a single file, mirroring the
// result cache.
func TestTraceCellDedup(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(nil, Options{TraceDir: dir})
	tr, flush := r.traceCell("cell-a")
	if tr == nil || flush == nil {
		t.Fatal("first capture refused")
	}
	if tr2, _ := r.traceCell("cell-a"); tr2 != nil {
		t.Fatal("duplicate label captured twice")
	}
	if tr3, _ := r.traceCell("cell b/with:odd chars"); tr3 == nil {
		t.Fatal("distinct label refused")
	}
	flush()
	if _, err := os.Stat(filepath.Join(dir, "cell-a.trace.json")); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	r.SetTraceDir("")
	if tr4, _ := r.traceCell("cell-c"); tr4 != nil {
		t.Fatal("tracing disabled but capture granted")
	}
	r.SetTraceDir(dir)
	if tr5, _ := r.traceCell("cell-a"); tr5 == nil {
		t.Fatal("new trace-dir epoch should reset the dedup set")
	}
}
