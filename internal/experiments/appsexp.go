package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/apps/amber"
	"multicore/internal/apps/lammps"
	"multicore/internal/apps/pop"
	"multicore/internal/report"
	"multicore/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table7",
		Title: "FFT time in the AMBER JAC benchmark vs numactl options",
		Paper: "The PME reciprocal FFT phase responds to placement like NAS FT: membind and interleave hurt on Longs.",
		Run:   runTable7,
	})
	register(Experiment{
		ID:    "table8",
		Title: "AMBER multi-core speedup (no numactl)",
		Paper: "PME near-linear to 4 cores, saturating at ~6-8x by 16; GB scales to ~14-15x.",
		Run:   runTable8,
	})
	register(Experiment{
		ID:    "table9",
		Title: "Overall AMBER JAC runtime vs numactl options",
		Paper: "Placement shifts full-application runtime 10-20% on Longs; DMZ default is near-optimal.",
		Run:   runTable9,
	})
	register(Experiment{
		ID:    "table10",
		Title: "LAMMPS multi-core speedup (LJ, Chain, EAM)",
		Paper: "Chain superlinear (19.95x at 16), EAM 12.5x, LJ 10.7x; consistent across systems.",
		Run:   runTable10,
	})
	register(Experiment{
		ID:    "table11",
		Title: "LAMMPS LJ runtime vs numactl options",
		Paper: "Same placement sensitivities as AMBER: membind worst, localalloc best.",
		Run:   runTable11,
	})
	register(Experiment{
		ID:    "table12",
		Title: "POP multi-core speedup (baroclinic, barotropic)",
		Paper: "Both phases scale nearly linearly on all three systems (baroclinic slightly better at 16).",
		Run:   runTable12,
	})
	register(Experiment{
		ID:    "table13",
		Title: "POP baroclinic time vs numactl options",
		Paper: "Localalloc best; membind up to ~2x worse at 8 tasks on Longs.",
		Run:   runTable13,
	})
	register(Experiment{
		ID:    "table14",
		Title: "POP barotropic time vs numactl options",
		Paper: "Latency-sensitive solver: placement matters at middling core counts, washes out at 16.",
		Run:   runTable14,
	})
}

func amberSteps(s Scale) int {
	if s == Full {
		return 50
	}
	return 4
}

// amberTimes is the pair of metrics one AMBER run yields; caching the
// pair lets Table 7 (FFT time) and Table 9 (total time) share runs.
// The fields are exported so the pair round-trips the persistent store.
type amberTimes struct {
	Total, FFT float64
}

// amberRun runs one AMBER benchmark (resolved through the workload
// registry) and returns (total, fft) times.
func amberRun(r *Runner, name, system string, ranks int, scheme affinity.Scheme, steps int, s Scale) (total, fft float64, err error) {
	times, err := runCell(r, CellKey{
		Workload: fmt.Sprintf("amber/%s/%d", name, steps),
		System:   system, Ranks: ranks, Scheme: scheme, Scale: s,
	}, func() (amberTimes, error) {
		wl, err := workload.New(workload.Spec{Name: "amber", Arg: name, Steps: steps})
		if err != nil {
			return amberTimes{}, err
		}
		res, err := r.runJob(fmt.Sprintf("amber-%s-%d", name, steps), system, ranks, scheme, wl.Body)
		if err != nil {
			return amberTimes{}, err
		}
		return amberTimes{Total: res.Max(amber.MetricTotalTime), FFT: res.Max(amber.MetricFFTTime)}, nil
	})
	return times.Total, times.FFT, err
}

var appSweep = []sysRanks{
	{System: "longs", Ranks: []int{2, 4, 8, 16}},
	{System: "dmz", Ranks: []int{2, 4}},
}

func runTable7(r *Runner, s Scale) []*report.Table {
	t := numactlTable(r, "Table 7: FFT time in the JAC benchmark (seconds)",
		appSweep,
		func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
			_, fft, err := amberRun(r, "JAC", system, ranks, scheme, amberSteps(s), s)
			return fft, err
		})
	return []*report.Table{t}
}

func runTable8(r *Runner, s Scale) []*report.Table {
	names := []string{"dhfr", "factor_ix", "gb_cox2", "gb_mb", "JAC"}
	t := speedupTable(r, "Table 8: AMBER multi-core speedup (no numactl)",
		[]sysRanks{
			{System: "dmz", Ranks: []int{2, 4}},
			{System: "longs", Ranks: []int{2, 4, 8, 16}},
		},
		names,
		func(system string, ranks int, which int) (float64, error) {
			total, _, err := amberRun(r, names[which], system, ranks, affinity.Default, amberSteps(s), s)
			return total, err
		})
	return []*report.Table{t}
}

func runTable9(r *Runner, s Scale) []*report.Table {
	t := numactlTable(r, "Table 9: overall JAC runtime (seconds)",
		appSweep,
		func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
			total, _, err := amberRun(r, "JAC", system, ranks, scheme, amberSteps(s), s)
			return total, err
		})
	return []*report.Table{t}
}

func lammpsSteps(s Scale) int {
	if s == Full {
		return 100
	}
	return 20
}

func lammpsRun(r *Runner, b lammps.Benchmark, system string, ranks int, scheme affinity.Scheme, steps int, s Scale) (float64, error) {
	return runCell(r, CellKey{
		Workload: fmt.Sprintf("lammps/%s/%d", b, steps),
		System:   system, Ranks: ranks, Scheme: scheme, Scale: s,
	}, func() (float64, error) {
		wl, err := workload.New(workload.Spec{Name: "lammps", Arg: b.String(), Steps: steps})
		if err != nil {
			return 0, err
		}
		res, err := r.runJob(fmt.Sprintf("lammps-%s-%d", b, steps), system, ranks, scheme, wl.Body)
		if err != nil {
			return 0, err
		}
		return res.Max(lammps.MetricTime), nil
	})
}

func runTable10(r *Runner, s Scale) []*report.Table {
	benches := []lammps.Benchmark{lammps.LJ, lammps.Chain, lammps.EAM}
	t := speedupTable(r, "Table 10: LAMMPS multi-core speedup (no numactl)",
		[]sysRanks{
			{System: "dmz", Ranks: []int{2, 4}},
			{System: "longs", Ranks: []int{2, 4, 8, 16}},
			{System: "tiger", Ranks: []int{2}},
		},
		[]string{"LJ", "Chain", "EAM"},
		func(system string, ranks int, which int) (float64, error) {
			return lammpsRun(r, benches[which], system, ranks, affinity.Default, lammpsSteps(s), s)
		})
	return []*report.Table{t}
}

func runTable11(r *Runner, s Scale) []*report.Table {
	t := numactlTable(r, "Table 11: LAMMPS LJ runtime vs numactl options (seconds)",
		appSweep,
		func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
			return lammpsRun(r, lammps.LJ, system, ranks, scheme, lammpsSteps(s), s)
		})
	return []*report.Table{t}
}

func popSteps(s Scale) int {
	if s == Full {
		return 50
	}
	return 3
}

// popTimes pairs the two POP phase metrics, so Table 12 (speedup),
// Table 13 (baroclinic), and Table 14 (barotropic) share runs. The
// fields are exported so the pair round-trips the persistent store.
type popTimes struct {
	Clinic, Tropic float64
}

func popRun(r *Runner, system string, ranks int, scheme affinity.Scheme, steps int, s Scale) (clinic, tropic float64, err error) {
	times, err := runCell(r, CellKey{
		Workload: fmt.Sprintf("pop/%d", steps),
		System:   system, Ranks: ranks, Scheme: scheme, Scale: s,
	}, func() (popTimes, error) {
		wl, err := workload.New(workload.Spec{Name: "pop", Steps: steps})
		if err != nil {
			return popTimes{}, err
		}
		res, err := r.runJob(fmt.Sprintf("pop-%d", steps), system, ranks, scheme, wl.Body)
		if err != nil {
			return popTimes{}, err
		}
		return popTimes{Clinic: res.Max(pop.MetricBaroclinic), Tropic: res.Max(pop.MetricBarotropic)}, nil
	})
	return times.Clinic, times.Tropic, err
}

func runTable12(r *Runner, s Scale) []*report.Table {
	t := speedupTable(r, "Table 12: POP multi-core speedup",
		[]sysRanks{
			{System: "dmz", Ranks: []int{2, 4}},
			{System: "tiger", Ranks: []int{2}},
			{System: "longs", Ranks: []int{2, 4, 8, 16}},
		},
		[]string{"Baroclinic", "Barotropic"},
		func(system string, ranks int, which int) (float64, error) {
			clinic, tropic, err := popRun(r, system, ranks, affinity.Default, popSteps(s), s)
			if which == 0 {
				return clinic, err
			}
			return tropic, err
		})
	return []*report.Table{t}
}

func runTable13(r *Runner, s Scale) []*report.Table {
	t := numactlTable(r, "Table 13: POP baroclinic execution time (seconds)",
		appSweep,
		func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
			clinic, _, err := popRun(r, system, ranks, scheme, popSteps(s), s)
			return clinic, err
		})
	return []*report.Table{t}
}

func runTable14(r *Runner, s Scale) []*report.Table {
	t := numactlTable(r, "Table 14: POP barotropic execution time (seconds)",
		appSweep,
		func(system string, ranks int, scheme affinity.Scheme) (float64, error) {
			_, tropic, err := popRun(r, system, ranks, scheme, popSteps(s), s)
			return tropic, err
		})
	return []*report.Table{t}
}
