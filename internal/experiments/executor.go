package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"multicore/internal/affinity"
)

// The paper's evaluation is a grid of independent cells — every
// (system, ranks, scheme, workload) combination owns a private simulation
// engine — so tables can execute their cells on a worker pool and collect
// results by index, keeping the emitted artifacts byte-identical to a
// serial run. A process-wide result cache deduplicates cells that several
// artifacts share (e.g. Table 13 and Table 14 analyze the same POP runs).

var pool = struct {
	sync.Mutex
	workers int
}{workers: runtime.GOMAXPROCS(0)}

// SetParallelism bounds the number of experiment cells simulating
// concurrently across all tables; n < 1 means serial. cmd/mcbench wires
// its -j flag here.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	pool.Lock()
	pool.workers = n
	pool.Unlock()
}

// Parallelism reports the current worker bound.
func Parallelism() int {
	pool.Lock()
	defer pool.Unlock()
	return pool.workers
}

// workerPanic carries a worker goroutine's panic to the caller.
type workerPanic struct{ v any }

// parMap evaluates fn(0..n-1) on the shared worker pool and returns the
// results in index order. With parallelism 1 it degenerates to a plain
// loop on the calling goroutine. A panicking fn re-panics on the caller.
func parMap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		wg    sync.WaitGroup
		next  int
		idxMu sync.Mutex

		panicOnce sync.Once
		panicked  *workerPanic
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idxMu.Lock()
				i := next
				next++
				idxMu.Unlock()
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = &workerPanic{v: r} })
							// Exhaust the index feed so other workers stop
							// claiming cells instead of simulating the rest
							// of the grid before the re-panic.
							idxMu.Lock()
							next = n
							idxMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked.v)
	}
	return out
}

// CellKey identifies one simulated cell for the result cache. Workload
// must encode every run parameter beyond the placement coordinates
// (kernel, problem class, step count, ...); two cells with equal keys
// must be byte-for-byte the same simulation.
type CellKey struct {
	Workload string
	System   string
	Ranks    int
	Scheme   affinity.Scheme
	Scale    Scale
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

var cellCache = struct {
	sync.Mutex
	m map[CellKey]*cacheEntry
}{m: map[CellKey]*cacheEntry{}}

// cached memoizes fn by key for the life of the process. Concurrent
// callers of the same key block until the first finishes, so duplicate
// cells simulate exactly once even under the parallel executor.
func cached[T any](key CellKey, fn func() (T, error)) (T, error) {
	cellCache.Lock()
	e, ok := cellCache.m[key]
	if !ok {
		e = &cacheEntry{}
		cellCache.m[key] = e
	}
	cellCache.Unlock()
	e.once.Do(func() {
		v, err := fn()
		e.val, e.err = v, err
	})
	if e.err != nil {
		var zero T
		return zero, e.err
	}
	v, ok := e.val.(T)
	if !ok {
		panic(fmt.Sprintf("experiments: cell %+v cached as %T, requested as different type", key, e.val))
	}
	return v, nil
}

// ClearCache drops every memoized cell result. Tests use it to force
// re-simulation; production sweeps have no reason to call it.
func ClearCache() {
	cellCache.Lock()
	cellCache.m = map[CellKey]*cacheEntry{}
	cellCache.Unlock()
}

// CacheSize reports the number of memoized cells.
func CacheSize() int {
	cellCache.Lock()
	defer cellCache.Unlock()
	return len(cellCache.m)
}
