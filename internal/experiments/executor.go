package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"multicore/internal/affinity"
	"multicore/internal/fault"
	"multicore/internal/report"
	"multicore/internal/sim"
	"multicore/internal/store"
)

// The paper's evaluation is a grid of independent cells — every
// (system, ranks, scheme, workload) combination owns a private simulation
// engine — so tables can execute their cells on a worker pool and collect
// results by index, keeping the emitted artifacts byte-identical to a
// serial run. A Runner owns the pool plus a per-run result cache that
// deduplicates cells shared by several artifacts (e.g. Table 13 and
// Table 14 analyze the same POP runs), and optionally a persistent
// on-disk store so interrupted sweeps resume instead of restarting.

// Options configures a Runner. The zero value gives the historical
// defaults: GOMAXPROCS-wide parallelism, in-memory caching only, no
// per-cell timeout, no tracing.
type Options struct {
	// Parallelism bounds the number of cells simulating concurrently
	// across all tables; < 1 means GOMAXPROCS.
	Parallelism int
	// Store, when non-nil, persists every completed cell and serves
	// repeat runs from disk (mcbench -store).
	Store *store.Store
	// Resume re-runs cells whose stored status is "error" instead of
	// reporting the recorded failure (mcbench -resume).
	Resume bool
	// CellTimeout bounds each cell's wall-clock simulation time; zero
	// disables the bound. A cell that exceeds it reports a
	// *sim.CanceledError instead of stalling the sweep.
	CellTimeout time.Duration
	// TraceDir, when non-empty, writes one Chrome trace file per cell
	// routed through runJob (mcbench -trace).
	TraceDir string
	// Faults, when non-nil, injects the plan's deterministic perturbations
	// into every cell (mcbench -faults). The canonical plan string and its
	// seed join the store key, so perturbed results never alias clean ones.
	Faults *fault.Plan
	// Retries bounds re-attempts of a cell that fails with a transient
	// error (fault.IsTransient); zero disables retrying. Deterministic
	// failures — panics, deadlocks, infeasible placements — are never
	// retried.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per attempt with deterministic seeded jitter. Zero retries
	// immediately.
	RetryBackoff time.Duration
	// SettleWorkers, when > 1, opts every cell routed through runJob into
	// component-mode parallel flow settling with at most that many workers
	// per cell (mcbench -settle). 0 or 1 keeps the legacy serial union
	// settling, whose float accumulation the golden artifacts pin.
	//
	// Composition with Parallelism is multiplicative — up to Parallelism
	// cells may each want SettleWorkers fill goroutines — so the engine
	// backstops the product with a process-wide token budget of
	// GOMAXPROCS-1 extra settle workers (see sim.Engine.SetSettleWorkers).
	// A cell that cannot acquire tokens settles with fewer workers without
	// blocking, and component-mode output is byte-identical for every
	// worker count, so the shortfall never changes results.
	SettleWorkers int
}

// Runner executes experiments: it owns the worker pool, the in-process
// cell cache, the optional persistent store, and the cancellation
// context. Independent Runners share nothing, so tests and mcbench's
// per-experiment -json timing mode get isolation by constructing fresh
// ones.
type Runner struct {
	ctx context.Context

	mu           sync.Mutex
	opts         Options
	cache        map[CellKey]*cacheEntry
	traceWritten map[string]bool
	errs         []error

	cellsRun  atomic.Int64
	storeHits atomic.Int64
}

// NewRunner builds a runner. A nil ctx means context.Background(); the
// sweep stops claiming new cells and aborts in-flight engines when ctx
// is canceled.
func NewRunner(ctx context.Context, opts Options) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		ctx:          ctx,
		opts:         opts,
		cache:        map[CellKey]*cacheEntry{},
		traceWritten: map[string]bool{},
	}
}

// Context returns the runner's cancellation context.
func (r *Runner) Context() context.Context { return r.ctx }

// Run executes one experiment at the given scale. A panic anywhere in
// the experiment body is captured as an error — one broken artifact must
// not kill the rest of a sweep. When the runner's context is canceled
// the partial tables are discarded and the context error is returned, so
// callers never emit half-computed artifacts.
func (r *Runner) Run(e Experiment, s Scale) (tables []*report.Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: %s panicked: %v", e.ID, p)
		}
	}()
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	tables = e.Run(r, s)
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	return tables, nil
}

// SetParallelism rebounds the worker pool; n < 1 means serial.
func (r *Runner) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.opts.Parallelism = n
	r.mu.Unlock()
}

func (r *Runner) parallelism() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Parallelism
}

// SetTraceDir enables per-cell trace capture into dir; "" disables.
func (r *Runner) SetTraceDir(dir string) {
	r.mu.Lock()
	r.opts.TraceDir = dir
	r.traceWritten = map[string]bool{}
	r.mu.Unlock()
}

// ClearCache drops every memoized in-process cell result (the on-disk
// store, if any, is untouched). Tests use it to force re-simulation.
func (r *Runner) ClearCache() {
	r.mu.Lock()
	r.cache = map[CellKey]*cacheEntry{}
	r.mu.Unlock()
}

// CacheSize reports the number of memoized cells.
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// CellsRun reports how many cells were actually simulated (store hits
// and in-process cache hits excluded).
func (r *Runner) CellsRun() int { return int(r.cellsRun.Load()) }

// StoreHits reports how many cells were served from the persistent
// store without simulating.
func (r *Runner) StoreHits() int { return int(r.storeHits.Load()) }

// CellErrors returns the distinct non-infeasible cell failures recorded
// so far (bounded; tables render such cells as ERR, this keeps the
// messages). Cancellation errors are not recorded — they describe the
// sweep stopping, not a cell failing.
func (r *Runner) CellErrors() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]error, len(r.errs))
	copy(out, r.errs)
	return out
}

const maxRecordedErrs = 32

func (r *Runner) noteErr(err error) {
	if isCanceled(err) {
		return
	}
	r.mu.Lock()
	if len(r.errs) < maxRecordedErrs {
		r.errs = append(r.errs, err)
	}
	r.mu.Unlock()
}

func (r *Runner) store() *store.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Store
}

func (r *Runner) resume() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Resume
}

// Faults returns the runner's fault plan, nil when unperturbed.
func (r *Runner) Faults() *fault.Plan {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Faults
}

// SettleWorkers reports the per-cell settle-worker bound; 0 or 1 means
// the legacy serial union settling.
func (r *Runner) SettleWorkers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.SettleWorkers
}

func (r *Runner) retryPolicy() (int, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Retries, r.opts.RetryBackoff
}

// jobContext derives the context one cell simulates under: the runner's
// context, bounded by the per-cell wall-clock timeout when configured.
func (r *Runner) jobContext() (context.Context, context.CancelFunc) {
	r.mu.Lock()
	d := r.opts.CellTimeout
	r.mu.Unlock()
	if d > 0 {
		return context.WithTimeout(r.ctx, d)
	}
	return r.ctx, func() {}
}

// Default returns the process-wide runner backing the deprecated
// package-level functions (SetParallelism, ClearCache, SetTraceDir). New
// code should construct its own Runner.
func Default() *Runner {
	defaultOnce.Do(func() {
		defaultRunner = NewRunner(context.Background(), Options{})
	})
	return defaultRunner
}

var (
	defaultOnce   sync.Once
	defaultRunner *Runner
)

// SetParallelism bounds the default runner's worker pool.
//
// Deprecated: construct a Runner with Options{Parallelism: n}.
func SetParallelism(n int) { Default().SetParallelism(n) }

// Parallelism reports the default runner's worker bound.
//
// Deprecated: use your own Runner.
func Parallelism() int { return Default().parallelism() }

// ClearCache drops the default runner's memoized cells.
//
// Deprecated: construct a fresh Runner instead.
func ClearCache() { Default().ClearCache() }

// CacheSize reports the default runner's memoized cell count.
//
// Deprecated: use Runner.CacheSize.
func CacheSize() int { return Default().CacheSize() }

// SetTraceDir enables trace capture on the default runner.
//
// Deprecated: construct a Runner with Options{TraceDir: dir}.
func SetTraceDir(dir string) { Default().SetTraceDir(dir) }

// workerPanic carries a worker goroutine's panic to the caller.
type workerPanic struct{ v any }

// parMap evaluates fn(0..n-1) on the runner's worker pool and returns
// the results in index order. With parallelism 1 it degenerates to a
// plain loop on the calling goroutine. A panicking fn re-panics on the
// caller (Runner.Run converts that into an experiment error). When the
// runner's context is canceled workers stop claiming indices — the
// partial results are discarded by Runner.Run, so the holes are never
// rendered.
func parMap[T any](r *Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers := r.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			if r.ctx.Err() != nil {
				break
			}
			out[i] = fn(i)
		}
		return out
	}
	var (
		wg    sync.WaitGroup
		next  int
		idxMu sync.Mutex

		panicOnce sync.Once
		panicked  *workerPanic
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if r.ctx.Err() != nil {
					return
				}
				idxMu.Lock()
				i := next
				next++
				idxMu.Unlock()
				if i >= n {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicOnce.Do(func() { panicked = &workerPanic{v: p} })
							// Exhaust the index feed so other workers stop
							// claiming cells instead of simulating the rest
							// of the grid before the re-panic.
							idxMu.Lock()
							next = n
							idxMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked.v)
	}
	return out
}

// CellKey identifies one simulated cell for the result cache and the
// persistent store. Workload must encode every run parameter beyond the
// placement coordinates (kernel, problem class, step count, ...); two
// cells with equal keys must be byte-for-byte the same simulation.
type CellKey struct {
	Workload string
	System   string
	Ranks    int
	Scheme   affinity.Scheme
	Scale    Scale
}

func (k CellKey) String() string {
	return fmt.Sprintf("%s/%s/r%d/%s/%s", k.Workload, k.System, k.Ranks, k.Scheme, k.Scale)
}

// storeKey maps the in-process key to the persistent store's identity.
// sim.ModelVersion participates so entries from an older engine
// generation never alias current results; the runner's fault plan (its
// canonical string and seed) participates so perturbed results never
// alias clean ones. Component-mode settling (SettleWorkers > 1) tags the
// model string: its per-component float accumulation can differ from the
// union-mode baseline in the last ULPs, so the two must never share
// entries. The worker count itself is deliberately absent — component
// mode is byte-identical for every count.
func (r *Runner) storeKey(k CellKey) store.Key {
	model := sim.ModelVersion
	if r.SettleWorkers() > 1 {
		model += "+csettle"
	}
	sk := store.Key{
		Workload: k.Workload,
		System:   k.System,
		Ranks:    k.Ranks,
		Scheme:   k.Scheme.String(),
		Scale:    k.Scale.String(),
		Model:    model,
	}
	if plan := r.Faults(); plan != nil {
		sk.Faults = plan.String()
		sk.FaultSeed = plan.Seed()
	}
	return sk
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

func (r *Runner) entry(key CellKey) *cacheEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cache[key]
	if !ok {
		e = &cacheEntry{}
		r.cache[key] = e
	}
	return e
}

// runCell memoizes fn by key for the life of the runner, consulting the
// persistent store first when one is configured. Concurrent callers of
// the same key block until the first finishes, so duplicate cells
// simulate exactly once even under the parallel executor. A panicking
// fn is captured as the cell's error (and recorded in the store) rather
// than unwinding the sweep.
//
// T must round-trip through encoding/json unchanged for stored results
// to reproduce byte-identical tables; float64s and structs of exported
// float64 fields do.
func runCell[T any](r *Runner, key CellKey, fn func() (T, error)) (T, error) {
	e := r.entry(key)
	e.once.Do(func() {
		e.val, e.err = computeCell(r, key, fn)
	})
	if e.err != nil {
		var zero T
		return zero, e.err
	}
	v, ok := e.val.(T)
	if !ok {
		panic(fmt.Sprintf("experiments: cell %+v cached as %T, requested as different type", key, e.val))
	}
	return v, nil
}

func computeCell[T any](r *Runner, key CellKey, fn func() (T, error)) (any, error) {
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	st := r.store()
	sk := r.storeKey(key)
	if st != nil {
		if v, err, served := loadCell[T](r, st, key, sk); served {
			return v, err
		}
	}
	v, err := runWithRetries(r, key, fn)
	r.cellsRun.Add(1)
	if err != nil && !isInfeasible(err) {
		r.noteErr(err)
	}
	if st != nil {
		r.persistCell(sk, v, err)
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

// loadCell serves a cell from the persistent store. served=false means
// a miss (absent, corrupt, or an error entry being retried under
// -resume) and the caller must simulate.
func loadCell[T any](r *Runner, st *store.Store, key CellKey, sk store.Key) (any, error, bool) {
	ent, err := st.Get(sk)
	if err != nil {
		// Schema mismatch or tampered entry: surface it, don't guess.
		r.noteErr(err)
		return nil, err, true
	}
	if ent == nil {
		return nil, nil, false
	}
	switch ent.Status {
	case store.StatusOK:
		var v T
		if err := json.Unmarshal(ent.Value, &v); err != nil {
			return nil, nil, false // undecodable value: re-run the cell
		}
		r.storeHits.Add(1)
		return v, nil, true
	case store.StatusInfeasible:
		r.storeHits.Add(1)
		return nil, &affinity.ErrInfeasible{Scheme: key.Scheme, Ranks: key.Ranks, System: key.System}, true
	case store.StatusError:
		if r.resume() {
			return nil, nil, false // -resume retries recorded failures
		}
		r.storeHits.Add(1)
		err := fmt.Errorf("experiments: cell %s failed in an earlier run (re-run with -resume to retry): %s", key, ent.Error)
		r.noteErr(err)
		return nil, err, true
	}
	return nil, nil, false // unknown status: treat as a miss
}

// persistCell records a completed cell. Cancellation and timeout
// outcomes are never persisted — they depend on wall-clock conditions,
// not on the cell — so the cell re-runs next time.
func (r *Runner) persistCell(sk store.Key, v any, err error) {
	st := r.store()
	var perr error
	switch {
	case err == nil:
		perr = st.Put(sk, v)
	case isInfeasible(err):
		perr = st.PutInfeasible(sk)
	case isCanceled(err):
		return
	default:
		perr = st.PutError(sk, err.Error())
	}
	if perr != nil {
		r.noteErr(perr)
	}
}

// runWithRetries attempts a cell up to 1+Retries times. Only transient
// failures (fault.IsTransient) are retried: injected chaos and flaky
// resources depend on the attempt, while panics, deadlocks, and
// infeasible placements are properties of the cell and repeat
// identically. Between attempts it backs off exponentially from
// RetryBackoff with deterministic seeded jitter — reproducible given the
// plan seed, but decorrelated across cells so a sweep's retries don't
// stampede. Cancellation cuts the backoff short. When the budget is
// exhausted the last transient error is returned: the cell renders as
// ERR and is recorded once, exactly like any other failed cell.
func runWithRetries[T any](r *Runner, key CellKey, fn func() (T, error)) (T, error) {
	plan := r.Faults()
	retries, backoff := r.retryPolicy()
	cell := key.String()
	var seed int64
	if plan != nil {
		seed = plan.Seed()
	}
	var v T
	var err error
	for attempt := 0; ; attempt++ {
		v, err = runAttempt(r, key, plan, cell, attempt, fn)
		if err == nil || !fault.IsTransient(err) || isCanceled(err) || attempt >= retries {
			return v, err
		}
		if backoff > 0 {
			d := time.Duration(float64(backoff) * math.Pow(2, float64(attempt)) *
				fault.BackoffJitter(seed, cell, attempt))
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-r.ctx.Done():
				t.Stop()
				var zero T
				return zero, r.ctx.Err()
			}
		}
	}
}

// runAttempt is one try at a cell: the fault plan may inject a transient
// failure for this (cell, attempt) before the simulation runs.
func runAttempt[T any](r *Runner, key CellKey, plan *fault.Plan, cell string, attempt int, fn func() (T, error)) (T, error) {
	if plan != nil {
		if ferr := plan.CellError(cell, attempt); ferr != nil {
			var zero T
			return zero, ferr
		}
	}
	return runIsolated(key, fn)
}

// runIsolated invokes fn, converting a panic into an error so one
// broken cell renders as ERR instead of killing the sweep.
func runIsolated[T any](key CellKey, fn func() (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: cell %s panicked: %v", key, p)
		}
	}()
	return fn()
}

func isInfeasible(err error) bool {
	var inf *affinity.ErrInfeasible
	return errors.As(err, &inf)
}

// isCanceled reports whether err describes the sweep being stopped (ctx
// cancellation, a cell deadline, or an engine abort) rather than the
// cell itself failing.
func isCanceled(err error) bool {
	var ce *sim.CanceledError
	return errors.As(err, &ce) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
