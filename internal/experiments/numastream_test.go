package experiments

import (
	"context"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/topology"
	"multicore/internal/units"
)

// TestNumaStreamDistanceOrdering checks Bergstrom's first figure
// qualitatively on a paper system and a modern multi-die machine: a
// single thread's triad bandwidth strictly decreases as its pages move
// to more distant nodes.
func TestNumaStreamDistanceOrdering(t *testing.T) {
	t.Parallel()
	r := NewRunner(context.Background(), Options{Parallelism: 4})
	vec := 16.0 * units.MB
	for _, sys := range numaStreamSystems() {
		topo := sys.spec.Topo
		if topo.NumSockets < 2 {
			continue // hybrid16: single socket, no remote node to compare
		}
		core := topo.CoresOn(0)[0]
		seen := map[int]int{} // hops -> node
		for s := 0; s < topo.NumSockets; s++ {
			h := topo.Hops(0, topology.SocketID(s))
			if _, ok := seen[h]; !ok {
				seen[h] = s
			}
		}
		prevBW, prevHops := 0.0, -1
		for h := 0; h < topo.NumSockets; h++ {
			node, ok := seen[h]
			if !ok {
				continue
			}
			bw, err := numaStreamBW(r, sys, core, node, vec)
			if err != nil {
				t.Fatalf("%s: hops=%d: %v", sys.label, h, err)
			}
			if prevHops >= 0 && bw >= prevBW {
				t.Errorf("%s: triad BW at %d hops (%.2f GB/s) should be below %d hops (%.2f GB/s)",
					sys.label, h, bw, prevHops, prevBW)
			}
			prevBW, prevHops = bw, h
		}
	}
}

// TestNumaStreamSchemeOrdering checks Bergstrom's placement result on a
// paper system and a modern machine: with one streaming rank per socket,
// local allocation beats the migrating OS default, which beats both
// wrong-node membind and all-node interleave.
func TestNumaStreamSchemeOrdering(t *testing.T) {
	t.Parallel()
	r := NewRunner(context.Background(), Options{Parallelism: 4})
	vec := 16.0 * units.MB
	for _, sys := range numaStreamSystems() {
		if sys.spec.Topo.NumSockets < 2 {
			continue // placement schemes coincide on a single node
		}
		bw := map[affinity.Scheme]float64{}
		for _, scheme := range numaStreamSchemes {
			v, err := numaStreamAggregate(r, sys, scheme, vec)
			if err != nil {
				t.Fatalf("%s: %v: %v", sys.label, scheme, err)
			}
			bw[scheme] = v
		}
		local, def := bw[affinity.OneMPILocalAlloc], bw[affinity.Default]
		membind, inter := bw[affinity.OneMPIMembind], bw[affinity.Interleave]
		if !(local > def) {
			t.Errorf("%s: localalloc (%.2f) should beat the OS default (%.2f)", sys.label, local, def)
		}
		if !(def > membind) {
			t.Errorf("%s: OS default (%.2f) should beat wrong-node membind (%.2f)", sys.label, def, membind)
		}
		if !(def > inter) {
			t.Errorf("%s: OS default (%.2f) should beat interleave (%.2f)", sys.label, def, inter)
		}
	}
}

// TestNumaStreamHybridClasses checks the hybrid row split: the P-core
// probe must not stream slower than the E-core probe (its issue path is
// wider), and both rows must appear in the distance table.
func TestNumaStreamHybridClasses(t *testing.T) {
	t.Parallel()
	r := NewRunner(context.Background(), Options{Parallelism: 2})
	vec := 16.0 * units.MB
	var hybrid numaSystem
	for _, sys := range numaStreamSystems() {
		if len(sys.spec.Topo.Classes) > 0 {
			hybrid = sys
		}
	}
	if hybrid.spec == nil {
		t.Fatal("no hybrid machine in the numa-stream system set")
	}
	cores := probeCores(hybrid.spec)
	if len(cores) != 2 {
		t.Fatalf("expected one probe core per class, got %v", cores)
	}
	pBW, err := numaStreamBW(r, hybrid, cores[0], 0, vec)
	if err != nil {
		t.Fatal(err)
	}
	eBW, err := numaStreamBW(r, hybrid, cores[1], 0, vec)
	if err != nil {
		t.Fatal(err)
	}
	if pBW < eBW {
		t.Errorf("P-core triad (%.2f GB/s) below E-core triad (%.2f GB/s)", pBW, eBW)
	}
}
