package experiments

import (
	"fmt"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
	"multicore/internal/report"
)

// ext-scale leaves the paper's 16-way nodes far behind: a ring-halo
// exchange (the nearest-neighbour skeleton of the paper's CG/MG stencils)
// across a cluster of Longs nodes, swept to 10k+ total ranks. The cells
// exist to exercise and demonstrate the engine's scale envelope — flat
// per-rank memory, recycled helper processes, and (with -settle N)
// component-mode parallel settling — so the table reports engine activity
// alongside the makespan.
func init() {
	register(Experiment{
		ID:    "ext-scale",
		Title: "Ring-halo exchange on a Longs cluster at 10k+ ranks",
		Paper: "Beyond the paper's single 16-core node: the same methodology at cluster scale, feasible because the engine's per-rank cost is flat.",
		Run:   runExtScale,
	})
}

// ringHaloBody is the SPMD body: steps iterations of a small compute slab
// followed by a shift around the rank ring (send right, receive left) —
// the halo-exchange pattern of the paper's stencil kernels, reduced to
// its communication skeleton so 10k-rank cells stay quick.
func ringHaloBody(steps int, bytes float64) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		n := r.Size()
		right := (r.ID() + 1) % n
		left := (r.ID() + n - 1) % n
		for s := 0; s < steps; s++ {
			r.Compute(1e6, 0.9)
			r.Sendrecv(right, bytes, left)
		}
	}
}

func runExtScale(r *Runner, s Scale) []*report.Table {
	const (
		ranksPerNode = 16 // one rank per Longs core
		steps        = 3
		haloBytes    = 4096
	)
	nodeCounts := []int{4, 64, 640} // 64, 1024, and 10240 total ranks
	if s == Full {
		nodeCounts = append(nodeCounts, 2560) // 40960 ranks
	}
	t := report.New("Ring halo on Longs nodes (16 ranks/node, RapidArray)",
		"Total ranks", "Nodes", "Makespan (s)", "Messages", "Engine events", "Procs spawned")
	type cell struct {
		time   float64
		msgs   int
		events uint64
		spawns uint64
	}
	cells := parMap(r, len(nodeCounts), func(i int) cell {
		nodes := nodeCounts[i]
		ctx, cancel := r.jobContext()
		defer cancel()
		res, err := core.RunContext(ctx, core.Job{
			System:        "longs",
			Ranks:         ranksPerNode,
			Scheme:        affinity.Default,
			Impl:          mpi.MPICH2(),
			Nodes:         nodes,
			Net:           mpi.RapidArray(),
			SettleWorkers: r.SettleWorkers(),
		}, ringHaloBody(steps, haloBytes))
		if err != nil {
			panic(err)
		}
		return cell{time: res.Time, msgs: res.Messages,
			events: res.Stats.Events, spawns: res.Stats.Spawns}
	})
	for i, nodes := range nodeCounts {
		c := cells[i]
		t.AddRow(fmt.Sprint(ranksPerNode*nodes), fmt.Sprint(nodes),
			report.Seconds(c.time), fmt.Sprint(c.msgs),
			fmt.Sprint(c.events), fmt.Sprint(c.spawns))
	}
	return []*report.Table{t}
}
