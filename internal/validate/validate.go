// Package validate provides closed-form predictions of what the simulator
// should produce in simple scenarios. Its tests hold the fluid-flow engine
// accountable to the cost model's algebra: if a refactor changes effective
// bandwidth sharing, latency composition, or transport arithmetic, these
// cross-checks fail before any paper-level shape test does.
package validate

import (
	"math"

	"multicore/internal/machine"
	"multicore/internal/mpi"
)

// SingleStreamRate returns the expected steady-state rate of one core
// streaming from its local controller: the minimum of the issue port, the
// controller, and the prefetch window.
func SingleStreamRate(spec *machine.Spec) float64 {
	window := spec.PrefetchDepth * spec.LineBytes / spec.LocalLatency
	return math.Min(spec.CoreIssueBW, math.Min(spec.MCBandwidth, window))
}

// SharedStreamRate returns the expected aggregate rate of k cores of one
// socket streaming locally: the controller's capacity shrunk by the
// interleaving penalty (each of the k flows sees k-1 concurrent flows,
// saturating at 3).
func SharedStreamRate(spec *machine.Spec, k int) float64 {
	if k <= 1 {
		return SingleStreamRate(spec)
	}
	penalty := 1 + spec.ContentionPenalty*math.Min(float64(k-1), 3)
	shared := spec.MCBandwidth / penalty
	return math.Min(shared, float64(k)*SingleStreamRate(spec))
}

// ChaseLatency returns the expected per-touch latency of a dependent
// chain resident on a node `hops` links away.
func ChaseLatency(spec *machine.Spec, hops int) float64 {
	return spec.LocalLatency + float64(hops)*spec.HopLatency
}

// RandomRate returns the expected byte rate of independent random misses
// to a node `hops` away (MLP-limited).
func RandomRate(spec *machine.Spec, hops int) float64 {
	return spec.MLPRandom * spec.LineBytes / ChaseLatency(spec, hops)
}

// EagerLatency returns the expected one-way latency of a small eager
// message between cores whose sockets are `hops` apart, with both
// endpoints' buffers local: software costs plus two copy times.
func EagerLatency(im *mpi.Impl, spec *machine.Spec, bytes float64, hops int) float64 {
	software := im.Sub.LockLatency + im.Sub.WakeLatency + im.Overhead +
		float64(hops)*spec.HopLatency
	// Copy-in to the sender-local segment, copy-out across the link.
	copyIn := bytes / (spec.MCBandwidth / 2) / im.CopyEfficiency
	outRate := spec.MCBandwidth / 2
	if hops > 0 {
		if c := spec.CopyCeiling(hops); c < outRate {
			outRate = c
		}
	}
	copyOut := bytes / outRate / im.CopyEfficiency
	return software + copyIn + copyOut
}
