package validate

import (
	"math"
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/machine"
	"multicore/internal/mem"
	"multicore/internal/mpi"
	"multicore/internal/topology"
	"multicore/internal/units"
)

func within(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Fatalf("%s: simulated %v vs predicted %v (tol %.0f%%)", msg, got, want, 100*tol)
	}
}

func bind(pol mem.Policy, cores ...int) []affinity.Binding {
	out := make([]affinity.Binding, len(cores))
	for i, c := range cores {
		out[i] = affinity.Binding{Core: topology.CoreID(c), MemPolicy: pol}
	}
	return out
}

// measureStream returns the simulated aggregate local-stream rate for the
// given cores.
func measureStream(spec *machine.Spec, cores ...int) float64 {
	const bytes = 32 * units.MB
	res := mpi.Run(mpi.Config{Spec: spec, Bindings: bind(mem.LocalAlloc, cores...)},
		func(r *mpi.Rank) {
			reg := r.Alloc("v", 8*units.MB)
			for i := 0; i < int(bytes/(8*units.MB)); i++ {
				r.Access(mem.Access{Region: reg, Pattern: mem.Stream, Bytes: 8 * units.MB})
			}
		})
	return float64(len(cores)) * bytes / res.Time
}

func TestSingleStreamRatePrediction(t *testing.T) {
	for _, spec := range []*machine.Spec{machine.Tiger(), machine.DMZ(), machine.Longs()} {
		got := measureStream(spec, 0)
		want := SingleStreamRate(spec)
		within(t, got, want, 0.05, spec.Topo.Name+" single stream")
	}
}

func TestSharedStreamRatePrediction(t *testing.T) {
	for _, spec := range []*machine.Spec{machine.DMZ(), machine.Longs()} {
		got := measureStream(spec, 0, 1) // both cores of socket 0
		want := SharedStreamRate(spec, 2)
		within(t, got, want, 0.10, spec.Topo.Name+" shared stream")
	}
}

func TestChaseLatencyPrediction(t *testing.T) {
	spec := machine.Longs()
	for hops, bindNode := range map[int]int{0: 0, 2: 4} {
		const touches = 20000
		res := mpi.Run(mpi.Config{Spec: spec,
			Bindings: []affinity.Binding{{Core: 0, MemPolicy: mem.Membind, BindNodes: []int{bindNode}}}},
			func(r *mpi.Rank) {
				reg := r.Alloc("chain", 64*units.MB)
				r.Access(mem.Access{Region: reg, Pattern: mem.Chase, Touches: touches})
			})
		got := res.Time / touches
		want := ChaseLatency(spec, hops)
		within(t, got, want, 0.05, "chase latency")
	}
}

func TestRandomRatePrediction(t *testing.T) {
	spec := machine.DMZ()
	const touches = 50000
	res := mpi.Run(mpi.Config{Spec: spec, Bindings: bind(mem.LocalAlloc, 0)},
		func(r *mpi.Rank) {
			reg := r.Alloc("tbl", 128*units.MB)
			r.Access(mem.Access{Region: reg, Pattern: mem.Random, Touches: touches})
		})
	got := touches * spec.LineBytes / res.Time
	want := RandomRate(spec, 0)
	within(t, got, want, 0.05, "random-access rate")
}

func TestEagerLatencyPrediction(t *testing.T) {
	spec := machine.DMZ()
	im := mpi.OpenMPI()
	const bytes = 4 * units.KB
	const iters = 200
	res := mpi.Run(mpi.Config{Spec: spec, Impl: im, Bindings: bind(mem.LocalAlloc, 0, 2)},
		func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				if r.ID() == 0 {
					r.Send(1, bytes)
					r.Recv(1)
				} else {
					r.Recv(0)
					r.Send(0, bytes)
				}
			}
		})
	got := res.Time / (2 * iters)
	want := EagerLatency(im, spec, bytes, 1)
	// The transport adds contention inflation and the copy paths differ
	// slightly from the closed form; hold it to 25%.
	within(t, got, want, 0.25, "eager one-way latency")
}

func TestPredictionsAreInternallyConsistent(t *testing.T) {
	spec := machine.Longs()
	if SharedStreamRate(spec, 2) > 2*SingleStreamRate(spec) {
		t.Fatal("two cores cannot exceed twice one core")
	}
	if ChaseLatency(spec, 4) <= ChaseLatency(spec, 0) {
		t.Fatal("remote chase must cost more")
	}
	if RandomRate(spec, 0) <= RandomRate(spec, 4) {
		t.Fatal("local random rate must exceed remote")
	}
}
