package affinity

import (
	"errors"
	"math"
	"testing"

	"multicore/internal/mem"
	"multicore/internal/topology"
)

func TestOneMPISpreadsAcrossSockets(t *testing.T) {
	topo := topology.DMZ()
	b, err := Layout(OneMPILocalAlloc, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.SocketOf(b[0].Core) == topo.SocketOf(b[1].Core) {
		t.Fatal("one-MPI-per-socket placed both ranks on one socket")
	}
	for _, bb := range b {
		if bb.MemPolicy != mem.LocalAlloc {
			t.Fatalf("policy = %v", bb.MemPolicy)
		}
	}
}

func TestOneMPIInfeasibleBeyondSockets(t *testing.T) {
	topo := topology.Longs()
	_, err := Layout(OneMPILocalAlloc, topo, 16)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestTwoMPIPacksPairs(t *testing.T) {
	topo := topology.Longs()
	b, err := Layout(TwoMPILocalAlloc, topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 8 ranks on 4 sockets, pairs sharing sockets.
	used := map[topology.SocketID]int{}
	for _, bb := range b {
		used[topo.SocketOf(bb.Core)]++
	}
	if len(used) != 4 {
		t.Fatalf("two-per-socket used %d sockets, want 4", len(used))
	}
	for s, c := range used {
		if c != 2 {
			t.Fatalf("socket %d has %d ranks", s, c)
		}
	}
}

func TestTwoMPIInfeasibleOnSingleCoreSockets(t *testing.T) {
	topo := topology.Tiger()
	_, err := Layout(TwoMPILocalAlloc, topo, 2)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("expected ErrInfeasible on Tiger, got %v", err)
	}
}

func TestMembindBindsToNeighborNode(t *testing.T) {
	topo := topology.DMZ()
	b, err := Layout(OneMPIMembind, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bb := range b {
		home := int(topo.SocketOf(bb.Core))
		d := bb.Placement(topo, topo.NumSockets)
		if d[home] != 0 {
			t.Fatalf("membind left pages on home node: %v", d)
		}
	}
}

func TestDefaultHasMisplacedPages(t *testing.T) {
	topo := topology.DMZ()
	b, err := Layout(Default, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := b[0].Placement(topo, topo.NumSockets)
	home := int(topo.SocketOf(b[0].Core))
	if math.Abs(d[home]-(1-DefaultMisplacedFrac)) > 1e-12 {
		t.Fatalf("default placement = %v", d)
	}
	sum := 0.0
	for _, f := range d {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("placement sums to %v", sum)
	}
}

func TestInterleaveDistribution(t *testing.T) {
	topo := topology.Longs()
	b, err := Layout(Interleave, topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := b[0].Placement(topo, topo.NumSockets)
	for _, f := range d {
		if math.Abs(f-0.125) > 1e-12 {
			t.Fatalf("interleave placement = %v", d)
		}
	}
}

func TestCompactSocketsPicksLadderBlock(t *testing.T) {
	topo := topology.Longs()
	got := compactSockets(topo, 4)
	// A 2x2 block (e.g. {0,1,2,3} or {2,3,4,5}) has pairwise cost
	// 1+1+1+1+2+2 = 8; a 1x4 rail run costs 1+2+3+1+2+1 = 10.
	cost := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			cost += topo.Hops(got[i], got[j])
		}
	}
	if cost != 8 {
		t.Fatalf("compactSockets(4) = %v with cost %d, want a 2x2 block (cost 8)", got, cost)
	}
}

func TestLayoutAllSchemesOnAllSystems(t *testing.T) {
	for _, topo := range []*topology.System{topology.Tiger(), topology.DMZ(), topology.Longs()} {
		for _, sch := range Schemes {
			for nranks := 1; nranks <= topo.NumCores(); nranks++ {
				b, err := Layout(sch, topo, nranks)
				if err != nil {
					var inf *ErrInfeasible
					if !errors.As(err, &inf) {
						t.Fatalf("%s/%v/%d: unexpected error %v", topo.Name, sch, nranks, err)
					}
					continue
				}
				if len(b) != nranks {
					t.Fatalf("%s/%v/%d: got %d bindings", topo.Name, sch, nranks, len(b))
				}
				seen := map[topology.CoreID]bool{}
				for _, bb := range b {
					if seen[bb.Core] {
						t.Fatalf("%s/%v/%d: core %d double-booked", topo.Name, sch, nranks, bb.Core)
					}
					seen[bb.Core] = true
					d := bb.Placement(topo, topo.NumSockets)
					sum := 0.0
					for _, f := range d {
						if f < -1e-12 {
							t.Fatalf("%s/%v/%d: negative placement %v", topo.Name, sch, nranks, d)
						}
						sum += f
					}
					if math.Abs(sum-1) > 1e-9 {
						t.Fatalf("%s/%v/%d: placement sums to %v", topo.Name, sch, nranks, sum)
					}
				}
			}
		}
	}
}

func TestZeroRanksError(t *testing.T) {
	if _, err := Layout(Default, topology.DMZ(), 0); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
}

func TestParseSchemeRoundTrip(t *testing.T) {
	names := []string{"default", "localalloc", "membind", "2mpi-localalloc", "2mpi-membind", "interleave"}
	seen := map[Scheme]bool{}
	for _, n := range names {
		s, err := ParseScheme(n)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s] {
			t.Fatalf("duplicate scheme for %q", n)
		}
		seen[s] = true
	}
	if len(seen) != len(Schemes) {
		t.Fatalf("parsed %d schemes, registry has %d", len(seen), len(Schemes))
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("expected error")
	}
}
