package affinity

import (
	"testing"

	"multicore/internal/topology"
)

// TestDefaultLayoutOnWideSockets checks the OS-default spread on sockets
// wider than the paper's two cores: ranks round-robin across sockets,
// filling each socket's core list in order.
func TestDefaultLayoutOnWideSockets(t *testing.T) {
	topo, err := topology.Parse("line:2x8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Layout(Default, topo, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, bind := range b {
		wantSock := topology.SocketID(i % 2)
		if topo.SocketOf(bind.Core) != wantSock {
			t.Fatalf("rank %d on socket %d, want %d", i, topo.SocketOf(bind.Core), wantSock)
		}
		wantCore := topo.CoresOn(wantSock)[i/2]
		if bind.Core != wantCore {
			t.Fatalf("rank %d on core %d, want %d", i, bind.Core, wantCore)
		}
	}
}

// TestDefaultLayoutFillsPCoresFirst: on a hybrid socket the class-major
// core ordering means the OS-default layout lands ranks on P cores
// before any E core activates.
func TestDefaultLayoutFillsPCoresFirst(t *testing.T) {
	topo, err := topology.Parse("sock:8P+8E")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Layout(Default, topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, bind := range b {
		if cl := topo.ClassOf(bind.Core); cl != 0 {
			t.Fatalf("rank %d on class %d core %d; first 8 ranks should use P cores", i, cl, bind.Core)
		}
	}
	b, err = Layout(Default, topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	eCores := 0
	for _, bind := range b {
		if topo.ClassOf(bind.Core) == 1 {
			eCores++
		}
	}
	if eCores != 8 {
		t.Fatalf("full layout uses %d E cores, want 8", eCores)
	}
}

// TestInterleaveLayoutMatchesDefaultCores: interleave changes the page
// policy, not the task layout.
func TestInterleaveLayoutMatchesDefaultCores(t *testing.T) {
	topo, err := topology.Parse("line:2x32/4")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Layout(Default, topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := Layout(Interleave, topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i].Core != iv[i].Core {
			t.Fatalf("rank %d: default core %d != interleave core %d", i, d[i].Core, iv[i].Core)
		}
	}
}
