// Package affinity implements the paper's processor/memory placement
// schemes (Table 5): combinations of an MPI task layout (one or two tasks
// per socket, or the OS default) with a numactl memory policy (localalloc,
// membind, interleave, or the first-touch default).
package affinity

import (
	"fmt"
	"sort"

	"multicore/internal/mem"
	"multicore/internal/topology"
)

// Scheme is one row of the paper's Table 5.
type Scheme int

const (
	// Default runs without numactl: the OS spreads tasks across sockets
	// and places pages by first touch, but early balancing migrations
	// leave a fraction of pages on the wrong node.
	Default Scheme = iota
	// OneMPILocalAlloc pins one task per socket with local allocation.
	OneMPILocalAlloc
	// OneMPIMembind pins one task per socket with explicit memory
	// binding per core. The paper bound memory to fixed *nodes*, which
	// ends up remote from the task — the worst performer in its tables.
	OneMPIMembind
	// TwoMPILocalAlloc pins two tasks per socket with local allocation.
	TwoMPILocalAlloc
	// TwoMPIMembind pins two tasks per socket with explicit (wrong-node)
	// memory binding.
	TwoMPIMembind
	// Interleave uses the OS task layout with pages interleaved across
	// all nodes.
	Interleave
)

// Schemes lists all Table 5 schemes in the paper's column order.
var Schemes = []Scheme{Default, OneMPILocalAlloc, OneMPIMembind, TwoMPILocalAlloc, TwoMPIMembind, Interleave}

func (s Scheme) String() string {
	switch s {
	case Default:
		return "Default"
	case OneMPILocalAlloc:
		return "One MPI + Local Alloc"
	case OneMPIMembind:
		return "One MPI + Membind"
	case TwoMPILocalAlloc:
		return "Two MPI + Local Alloc"
	case TwoMPIMembind:
		return "Two MPI + Membind"
	case Interleave:
		return "Interleave"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// DefaultMisplacedFrac is the fraction of a rank's pages that land on a
// neighbouring node under the unbound OS default, modeling first-touch
// during early scheduler migrations.
const DefaultMisplacedFrac = 0.25

// Binding is the placement decision for one MPI rank.
type Binding struct {
	Core      topology.CoreID
	MemPolicy mem.Policy
	// BindNodes is the membind target set (nil otherwise).
	BindNodes []int
	// MisplacedFrac is the fraction of first-touch pages placed on
	// MisplacedNode instead of the local node (OS default only).
	MisplacedFrac float64
	MisplacedNode int
}

// Placement resolves the binding into a page distribution for a region
// allocated by this rank on a system with numNodes memory nodes.
func (b Binding) Placement(topo *topology.System, numNodes int) mem.Placement {
	home := int(topo.SocketOf(b.Core))
	switch b.MemPolicy {
	case mem.Membind:
		return mem.Place(mem.Membind, numNodes, home, b.BindNodes)
	case mem.Interleave:
		return mem.Place(mem.Interleave, numNodes, home, nil)
	case mem.LocalAlloc:
		return mem.Place(mem.LocalAlloc, numNodes, home, nil)
	default: // FirstTouch, possibly with misplacement
		d := mem.Place(mem.FirstTouch, numNodes, home, nil)
		if b.MisplacedFrac > 0 && b.MisplacedNode != home {
			d[home] -= b.MisplacedFrac
			d[b.MisplacedNode] += b.MisplacedFrac
		}
		return d
	}
}

// ErrInfeasible reports that a scheme cannot host the rank count on the
// system (the dashes in the paper's tables, e.g. one task per socket with
// 16 tasks on 8 sockets).
type ErrInfeasible struct {
	Scheme Scheme
	Ranks  int
	System string
}

func (e *ErrInfeasible) Error() string {
	return fmt.Sprintf("affinity: %v cannot place %d ranks on %s", e.Scheme, e.Ranks, e.System)
}

// Layout computes per-rank bindings for a scheme on a topology.
func Layout(scheme Scheme, topo *topology.System, nranks int) ([]Binding, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("affinity: rank count %d must be positive", nranks)
	}
	if nranks > topo.NumCores() {
		return nil, &ErrInfeasible{Scheme: scheme, Ranks: nranks, System: topo.Name}
	}
	n := topo.NumSockets
	switch scheme {
	case OneMPILocalAlloc, OneMPIMembind:
		if nranks > n {
			return nil, &ErrInfeasible{Scheme: scheme, Ranks: nranks, System: topo.Name}
		}
		sockets := compactSockets(topo, nranks)
		out := make([]Binding, nranks)
		for i := range out {
			sock := sockets[i]
			out[i] = Binding{Core: topo.CoresOn(sock)[0], MemPolicy: mem.LocalAlloc}
			if scheme == OneMPIMembind {
				out[i].MemPolicy = mem.Membind
				out[i].BindNodes = []int{membindTarget(int(sock), n)}
			}
		}
		return out, nil

	case TwoMPILocalAlloc, TwoMPIMembind:
		if topo.CoresPerSock < 2 || nranks > 2*n {
			return nil, &ErrInfeasible{Scheme: scheme, Ranks: nranks, System: topo.Name}
		}
		nsock := (nranks + 1) / 2
		sockets := compactSockets(topo, nsock)
		out := make([]Binding, nranks)
		for i := range out {
			sock := sockets[i/2]
			out[i] = Binding{Core: topo.CoresOn(sock)[i%2], MemPolicy: mem.LocalAlloc}
			if scheme == TwoMPIMembind {
				out[i].MemPolicy = mem.Membind
				out[i].BindNodes = []int{membindTarget(int(sock), n)}
			}
		}
		return out, nil

	case Default, Interleave:
		// OS default: balance across sockets in id order (no ladder
		// awareness), filling each socket's k-th core before any (k+1)-th.
		// nranks <= NumCores was checked above, so i/n is always a valid
		// per-socket index; on hybrid sockets the low core ids — the
		// performance class — fill first, as a modern scheduler would.
		out := make([]Binding, nranks)
		for i := range out {
			core := topo.CoresOn(topology.SocketID(i % n))[i/n]
			home := int(topo.SocketOf(core))
			if scheme == Interleave {
				out[i] = Binding{Core: core, MemPolicy: mem.Interleave}
			} else {
				out[i] = Binding{
					Core:          core,
					MemPolicy:     mem.FirstTouch,
					MisplacedFrac: DefaultMisplacedFrac,
					MisplacedNode: (home + 1) % n,
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("affinity: unknown scheme %v", scheme)
}

// membindTarget is the node the paper's (mis)configured membind scheme
// binds a socket's memory to: the node half-way across the system, so
// every access is remote and the binding routes cross each other on the
// ladder.
func membindTarget(sock, n int) int {
	if n < 2 {
		return sock
	}
	return (sock + n/2) % n
}

// compactSockets picks nsock sockets minimizing total pairwise hop count,
// modeling the paper's choice to "minimize the effect of the HT ladder"
// (they used sockets 2–5 for four-socket runs on Longs). Ties break toward
// the lexicographically smallest set.
func compactSockets(topo *topology.System, nsock int) []topology.SocketID {
	n := topo.NumSockets
	if nsock >= n {
		out := make([]topology.SocketID, n)
		for i := range out {
			out[i] = topology.SocketID(i)
		}
		return out
	}
	best := make([]int, 0, nsock)
	bestCost := -1
	cur := make([]int, 0, nsock)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == nsock {
			cost := 0
			for i := 0; i < nsock; i++ {
				for j := i + 1; j < nsock; j++ {
					cost += topo.Hops(topology.SocketID(cur[i]), topology.SocketID(cur[j]))
				}
			}
			if bestCost == -1 || cost < bestCost {
				bestCost = cost
				best = append(best[:0], cur...)
			}
			return
		}
		for s := start; s < n; s++ {
			cur = append(cur, s)
			rec(s + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	sort.Ints(best)
	out := make([]topology.SocketID, nsock)
	for i, s := range best {
		out[i] = topology.SocketID(s)
	}
	return out
}

// CLIName renders the scheme's CLI spelling — the inverse of
// ParseScheme. Grid sweeps and the distributed sweep protocol use it as
// the canonical on-the-wire scheme encoding, so the names are part of
// the protocol.
func (s Scheme) CLIName() string {
	switch s {
	case Default:
		return "default"
	case OneMPILocalAlloc:
		return "localalloc"
	case OneMPIMembind:
		return "membind"
	case TwoMPILocalAlloc:
		return "2mpi-localalloc"
	case TwoMPIMembind:
		return "2mpi-membind"
	case Interleave:
		return "interleave"
	}
	return fmt.Sprintf("scheme%d", int(s))
}

// ParseScheme resolves a scheme's CLI name. Accepted names: default,
// localalloc, membind, 2mpi-localalloc, 2mpi-membind, interleave.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "default":
		return Default, nil
	case "localalloc":
		return OneMPILocalAlloc, nil
	case "membind":
		return OneMPIMembind, nil
	case "2mpi-localalloc":
		return TwoMPILocalAlloc, nil
	case "2mpi-membind":
		return TwoMPIMembind, nil
	case "interleave":
		return Interleave, nil
	}
	return 0, fmt.Errorf("affinity: unknown scheme %q", name)
}
