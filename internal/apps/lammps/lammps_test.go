package lammps

import (
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
)

func TestByName(t *testing.T) {
	for _, n := range []string{"lj", "chain", "eam"} {
		b, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != n {
			t.Fatalf("round trip %q -> %v", n, b)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func runLammps(t *testing.T, b Benchmark, system string, ranks int, scheme affinity.Scheme) float64 {
	t.Helper()
	res, err := core.Run(core.Job{System: system, Ranks: ranks, Scheme: scheme}, func(r *mpi.Rank) {
		Run(r, Params{Bench: b, Steps: 20})
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Max(MetricTime)
}

func TestLJScalingShape(t *testing.T) {
	t1 := runLammps(t, LJ, "longs", 1, affinity.Default)
	t4 := runLammps(t, LJ, "longs", 4, affinity.Default)
	t16 := runLammps(t, LJ, "longs", 16, affinity.Default)
	s4, s16 := t1/t4, t1/t16
	// Paper Table 10: LJ on Longs: 3.51x at 4, 10.65x at 16.
	if s4 < 2.8 || s4 > 4.3 {
		t.Fatalf("LJ 4-core speedup = %.2f, want ~3.5", s4)
	}
	if s16 < 7 || s16 > 16 {
		t.Fatalf("LJ 16-core speedup = %.2f, want ~10.7", s16)
	}
}

func TestChainScalesBestOfThree(t *testing.T) {
	// Paper Table 10 on Longs at 16 cores: chain 19.95x (superlinear)
	// vs LJ 10.65x and EAM 12.54x. Assert the ordering.
	sp := func(b Benchmark) float64 {
		return runLammps(t, b, "longs", 1, affinity.Default) /
			runLammps(t, b, "longs", 16, affinity.Default)
	}
	lj, chain, eam := sp(LJ), sp(Chain), sp(EAM)
	if !(chain > eam && chain > lj) {
		t.Fatalf("chain (%.1f) should scale best (lj %.1f, eam %.1f)", chain, lj, eam)
	}
}

func TestScalingConsistentAcrossSystems(t *testing.T) {
	// Paper: "The scaling behavior is consistent across different
	// dual-core Opteron system configurations."
	for _, sys := range []string{"dmz", "tiger"} {
		t1 := runLammps(t, LJ, sys, 1, affinity.Default)
		t2 := runLammps(t, LJ, sys, 2, affinity.Default)
		if s := t1 / t2; s < 1.5 || s > 2.3 {
			t.Fatalf("%s LJ 2-core speedup = %.2f", sys, s)
		}
	}
}

func TestMembindHurtsLJ(t *testing.T) {
	// Paper Table 11: membind schemes degrade LJ on Longs.
	local := runLammps(t, LJ, "longs", 8, affinity.TwoMPILocalAlloc)
	membind := runLammps(t, LJ, "longs", 8, affinity.TwoMPIMembind)
	if membind <= local {
		t.Fatalf("membind %.4f should be slower than localalloc %.4f", membind, local)
	}
}
