package lammps

import "math"

// Real molecular-dynamics numerics: a small velocity-Verlet integrator
// over the Lennard-Jones potential. The simulated benchmark drivers model
// cost; this code validates the physics structure they stand for (energy
// conservation, force symmetry) in the test suite and host benchmarks.

// System is a small real MD system in reduced LJ units.
type System struct {
	N         int
	Box       float64 // cubic periodic box edge
	Cutoff    float64
	Pos, Vel  []float64 // 3N coordinates
	Force     []float64
	potential float64
}

// NewLattice builds an n^3-site cubic lattice with the given spacing and
// zero initial velocities.
func NewLattice(n int, spacing float64) *System {
	count := n * n * n
	s := &System{
		N:      count,
		Box:    float64(n) * spacing,
		Cutoff: 2.5,
		Pos:    make([]float64, 3*count),
		Vel:    make([]float64, 3*count),
		Force:  make([]float64, 3*count),
	}
	i := 0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				s.Pos[3*i] = (float64(x) + 0.5) * spacing
				s.Pos[3*i+1] = (float64(y) + 0.5) * spacing
				s.Pos[3*i+2] = (float64(z) + 0.5) * spacing
				i++
			}
		}
	}
	return s
}

// minimumImage wraps a displacement into the nearest periodic image.
func (s *System) minimumImage(d float64) float64 {
	for d > s.Box/2 {
		d -= s.Box
	}
	for d < -s.Box/2 {
		d += s.Box
	}
	return d
}

// ComputeForces evaluates LJ forces and potential energy over all pairs
// within the cutoff (O(N^2); the real code is for validation, not speed).
func (s *System) ComputeForces() {
	for i := range s.Force {
		s.Force[i] = 0
	}
	s.potential = 0
	rc2 := s.Cutoff * s.Cutoff
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			dx := s.minimumImage(s.Pos[3*i] - s.Pos[3*j])
			dy := s.minimumImage(s.Pos[3*i+1] - s.Pos[3*j+1])
			dz := s.minimumImage(s.Pos[3*i+2] - s.Pos[3*j+2])
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			// LJ: U = 4 (r^-12 - r^-6); F = 24 (2 r^-12 - r^-6) / r^2 * dr
			s.potential += 4 * (inv6*inv6 - inv6)
			f := 24 * (2*inv6*inv6 - inv6) * inv2
			s.Force[3*i] += f * dx
			s.Force[3*i+1] += f * dy
			s.Force[3*i+2] += f * dz
			s.Force[3*j] -= f * dx
			s.Force[3*j+1] -= f * dy
			s.Force[3*j+2] -= f * dz
		}
	}
}

// Step advances the system by dt with velocity Verlet.
func (s *System) Step(dt float64) {
	half := dt / 2
	for i := range s.Pos {
		s.Vel[i] += half * s.Force[i]
		s.Pos[i] += dt * s.Vel[i]
		// Wrap into the box.
		if s.Pos[i] < 0 {
			s.Pos[i] += s.Box
		} else if s.Pos[i] >= s.Box {
			s.Pos[i] -= s.Box
		}
	}
	s.ComputeForces()
	for i := range s.Vel {
		s.Vel[i] += half * s.Force[i]
	}
}

// Kinetic returns the kinetic energy (unit masses).
func (s *System) Kinetic() float64 {
	k := 0.0
	for _, v := range s.Vel {
		k += v * v
	}
	return k / 2
}

// Potential returns the last computed potential energy.
func (s *System) Potential() float64 { return s.potential }

// TotalEnergy returns kinetic + potential.
func (s *System) TotalEnergy() float64 { return s.Kinetic() + s.Potential() }

// NetForce returns the magnitude of the total force vector; Newton's
// third law demands it be ~0.
func (s *System) NetForce() float64 {
	var fx, fy, fz float64
	for i := 0; i < s.N; i++ {
		fx += s.Force[3*i]
		fy += s.Force[3*i+1]
		fz += s.Force[3*i+2]
	}
	return math.Sqrt(fx*fx + fy*fy + fz*fz)
}
