package lammps

import (
	"math"
	"math/rand"
	"testing"
)

func thermalize(s *System, temp float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range s.Vel {
		s.Vel[i] = rng.NormFloat64() * math.Sqrt(temp)
	}
}

func TestForcesObeyNewtonsThirdLaw(t *testing.T) {
	s := NewLattice(4, 1.2)
	thermalize(s, 0.5, 1)
	s.ComputeForces()
	if nf := s.NetForce(); nf > 1e-9 {
		t.Fatalf("net force = %v, want ~0", nf)
	}
}

func TestLatticeForcesBalanced(t *testing.T) {
	// A perfect lattice is a stationary point: every per-atom force
	// cancels by symmetry (up to roundoff).
	s := NewLattice(3, 1.1)
	s.ComputeForces()
	for i := 0; i < s.N; i++ {
		f := math.Abs(s.Force[3*i]) + math.Abs(s.Force[3*i+1]) + math.Abs(s.Force[3*i+2])
		if f > 1e-8 {
			t.Fatalf("atom %d force %v on a symmetric lattice", i, f)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	s := NewLattice(4, 1.2)
	thermalize(s, 0.05, 2)
	s.ComputeForces()
	e0 := s.TotalEnergy()
	for step := 0; step < 200; step++ {
		s.Step(0.002)
	}
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 5e-3 {
		t.Fatalf("energy drifted %.2f%% over 200 steps (%v -> %v)", 100*drift, e0, e1)
	}
}

func TestMinimumImage(t *testing.T) {
	s := NewLattice(2, 2.0) // box = 4
	if d := s.minimumImage(3.5); math.Abs(d+0.5) > 1e-12 {
		t.Fatalf("minimumImage(3.5) = %v, want -0.5", d)
	}
	if d := s.minimumImage(-3.5); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("minimumImage(-3.5) = %v, want 0.5", d)
	}
	if d := s.minimumImage(1.0); d != 1.0 {
		t.Fatalf("minimumImage(1.0) = %v", d)
	}
}

func TestPotentialIsNegativeNearEquilibrium(t *testing.T) {
	// Lattice spacing near the LJ minimum (2^(1/6) ~ 1.12) binds.
	s := NewLattice(3, 1.12)
	s.ComputeForces()
	if s.Potential() >= 0 {
		t.Fatalf("potential = %v, want negative (bound state)", s.Potential())
	}
}

func TestHotSystemExpandsKinetically(t *testing.T) {
	s := NewLattice(3, 1.2)
	thermalize(s, 2.0, 3)
	k0 := s.Kinetic()
	if k0 <= 0 {
		t.Fatal("no kinetic energy after thermalize")
	}
	s.ComputeForces()
	for step := 0; step < 50; step++ {
		s.Step(0.001)
	}
	// The system stays finite (no integrator blow-up).
	for _, p := range s.Pos {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("integrator blew up")
		}
	}
}
