// Package lammps models the LAMMPS classical molecular-dynamics benchmarks
// the paper runs (Section 4.1, Tables 10-11): Lennard-Jones (LJ), polymer
// chain (Chain), and embedded-atom metal (EAM), each with 32,000 atoms for
// 100 time steps, under spatial decomposition with halo exchanges.
//
// The three benchmarks differ in pair density and per-pair cost, which is
// what drives their different scaling: Chain's short bonded lists shrink
// per-rank working sets below cache quickly (the paper's superlinear
// speedups), while LJ and EAM stay pair-list-bandwidth heavy.
package lammps

import (
	"fmt"
	"math"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Benchmark identifies one of the paper's three LAMMPS inputs.
type Benchmark int

// The paper's benchmark set.
const (
	LJ Benchmark = iota
	Chain
	EAM
)

func (b Benchmark) String() string {
	switch b {
	case LJ:
		return "lj"
	case Chain:
		return "chain"
	case EAM:
		return "eam"
	}
	return fmt.Sprintf("Benchmark(%d)", int(b))
}

// ByName resolves "lj", "chain", or "eam".
func ByName(name string) (Benchmark, error) {
	switch name {
	case "lj":
		return LJ, nil
	case "chain":
		return Chain, nil
	case "eam":
		return EAM, nil
	}
	return 0, fmt.Errorf("lammps: unknown benchmark %q", name)
}

// profile holds the cost-model constants per benchmark.
type profile struct {
	neighbors    float64 // average half pair-list length per atom
	flopsPerPair float64
	passes       float64 // force sweeps per step (EAM: density + force)
	eff          float64 // inner-loop compute efficiency
	gatherFrac   float64 // fraction of pair touches that gather positions
	// gatherPattern distinguishes spatially-sorted gathers (Random,
	// overlapped misses) from bonded-chain traversal (Chase, dependent
	// misses) — the latter is what makes the polymer benchmark collapse
	// out of cache and scale superlinearly once per-rank data fits.
	gatherPattern mem.Pattern
	haloFactor    float64 // ghost-shell thickness relative to a tile face
}

func (b Benchmark) profile() profile {
	switch b {
	case LJ:
		// Long cutoff: dense lists, thick ghost shells.
		return profile{neighbors: 37, flopsPerPair: 45, passes: 1, eff: 0.30,
			gatherFrac: 0.125, gatherPattern: mem.Random, haloFactor: 6}
	case Chain:
		// Bonded polymer: position gathers follow molecule chains
		// (dependent accesses), cheap pairs, thin halos.
		return profile{neighbors: 25, flopsPerPair: 30, passes: 1, eff: 0.30,
			gatherFrac: 1.0, gatherPattern: mem.Chase, haloFactor: 1.5}
	case EAM:
		// Embedding energy requires two sweeps over a denser list and a
		// mid-step ghost-density exchange.
		return profile{neighbors: 45, flopsPerPair: 60, passes: 2, eff: 0.32,
			gatherFrac: 0.125, gatherPattern: mem.Random, haloFactor: 7}
	}
	panic("lammps: unknown benchmark")
}

// Report keys.
const (
	MetricTime = "lammps.time" // per-rank loop time (s)
)

// Params configures a simulated run.
type Params struct {
	Bench Benchmark
	Atoms int // default 32000 (the paper's size)
	Steps int // default 100 (the paper's length)
}

// Run executes the simulated LAMMPS loop on one rank.
func Run(r *mpi.Rank, p Params) {
	if p.Atoms == 0 {
		p.Atoms = 32000
	}
	if p.Steps == 0 {
		p.Steps = 100
	}
	prof := p.Bench.profile()
	atoms := float64(p.Atoms)
	size := float64(r.Size())
	atomsLocal := atoms / size

	// Per-rank arrays: positions/forces/velocities (24 B each) and the
	// neighbor list (8 B per pair: index + distance bookkeeping).
	atomBytes := 3 * 24 * atomsLocal
	listBytes := atomsLocal * prof.neighbors * 8
	atomsR := r.Alloc("lmp.atoms", atomBytes)
	list := r.Alloc("lmp.list", listBytes)

	// Halo volume: the six faces of this rank's subdomain. Ghost width
	// is roughly one cutoff layer: (atomsLocal)^(2/3) atoms per face.
	haloAtoms := prof.haloFactor * math.Pow(atomsLocal, 2.0/3.0)
	haloBytes := haloAtoms * 24

	r.Barrier()
	start := r.Now()
	for step := 0; step < p.Steps; step++ {
		// Forward halo exchange of ghost positions.
		if r.Size() > 1 {
			exchangeHalo(r, haloBytes)
		}
		// Force computation: stream the pair list, gather positions,
		// accumulate forces. After the forward halos, EAM exchanges
		// ghost densities between its two sweeps, and every style
		// reverse-communicates ghost forces at the end.
		pairCount := atomsLocal * prof.neighbors
		r.Overlap(prof.passes*pairCount*prof.flopsPerPair, prof.eff,
			mem.Access{Region: list, Pattern: mem.Stream, Bytes: prof.passes * listBytes},
			mem.Access{Region: atomsR, Pattern: prof.gatherPattern, Touches: pairCount * prof.gatherFrac},
		)
		if r.Size() > 1 {
			if p.Bench == EAM {
				exchangeHalo(r, haloBytes)
			}
			exchangeHalo(r, haloBytes) // reverse force communication
		}
		// Neighbor-list rebuild every 10 steps: re-bin and re-sweep.
		if step%10 == 0 {
			r.Overlap(20*atomsLocal*prof.neighbors, 0.25,
				mem.Access{Region: atomsR, Pattern: mem.Stream, Bytes: atomBytes},
				mem.Access{Region: list, Pattern: mem.StreamWrite, Bytes: listBytes},
			)
		}
		// Integration sweep.
		r.Overlap(12*atomsLocal, 0.4,
			mem.Access{Region: atomsR, Pattern: mem.Stream, Bytes: atomBytes / 3},
			mem.Access{Region: atomsR, Pattern: mem.StreamWrite, Bytes: atomBytes / 3},
		)
		// Thermo output reduction every 10 steps.
		if step%10 == 0 && r.Size() > 1 {
			r.Allreduce(64)
		}
	}
	r.Report(MetricTime, r.Now()-start)
}

// exchangeHalo swaps ghost layers with the spatial neighbors along the
// three axes (simultaneous sendrecv per direction).
func exchangeHalo(r *mpi.Rank, haloBytes float64) {
	n := r.Size()
	for axis := 0; axis < 3; axis++ {
		stride := 1 << axis
		if stride >= n {
			break
		}
		up := (r.ID() + stride) % n
		down := (r.ID() - stride + n) % n
		if up == r.ID() {
			continue
		}
		// Both directions post concurrently, as MPI_Irecv/Isend pairs.
		s1 := r.Isend(up, haloBytes)
		if down != up {
			s2 := r.Isend(down, haloBytes)
			r.Recv(down)
			r.Recv(up)
			r.WaitAll(s1, s2)
		} else {
			r.Recv(down)
			r.Wait(s1)
		}
	}
}
