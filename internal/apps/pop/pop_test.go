package pop

import (
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
)

func runPOP(t *testing.T, system string, ranks int, scheme affinity.Scheme, steps int) (clinic, tropic float64) {
	t.Helper()
	res, err := core.Run(core.Job{System: system, Ranks: ranks, Scheme: scheme}, func(r *mpi.Rank) {
		Run(r, Params{Steps: steps})
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Max(MetricBaroclinic), res.Max(MetricBarotropic)
}

func TestX1Defaults(t *testing.T) {
	p := X1()
	if p.NX != 320 || p.NY != 384 || p.NZ != 40 || p.Steps != 50 {
		t.Fatalf("x1 = %+v", p)
	}
}

func TestBothPhasesScaleOnDMZ(t *testing.T) {
	c1, b1 := runPOP(t, "dmz", 1, affinity.Default, 5)
	c4, b4 := runPOP(t, "dmz", 4, affinity.Default, 5)
	sc, sb := c1/c4, b1/b4
	// Paper Table 12: DMZ at 4 cores: baroclinic 3.87x, barotropic 3.99x.
	if sc < 3.0 || sc > 4.6 {
		t.Fatalf("baroclinic 4-core speedup = %.2f, want ~3.9", sc)
	}
	if sb < 2.8 || sb > 4.6 {
		t.Fatalf("barotropic 4-core speedup = %.2f, want ~4.0", sb)
	}
}

func TestLongsScalesTo16(t *testing.T) {
	c1, b1 := runPOP(t, "longs", 1, affinity.Default, 3)
	c16, b16 := runPOP(t, "longs", 16, affinity.Default, 3)
	sc, sb := c1/c16, b1/b16
	// Paper Table 12: Longs at 16: baroclinic 16.11x, barotropic 14.85x.
	if sc < 9 || sc > 18 {
		t.Fatalf("baroclinic 16-core speedup = %.2f, want ~16", sc)
	}
	if sb < 6 || sb > 17 {
		t.Fatalf("barotropic 16-core speedup = %.2f, want ~15", sb)
	}
	if sb > sc {
		t.Fatalf("barotropic (%.1f) should scale no better than baroclinic (%.1f)", sb, sc)
	}
}

func TestBaroclinicDominatesRuntime(t *testing.T) {
	// Paper: "the baroclinic process is relatively more computationally
	// expensive than the barotropic process".
	c, b := runPOP(t, "dmz", 2, affinity.Default, 5)
	if c <= b {
		t.Fatalf("baroclinic %.3f should exceed barotropic %.3f", c, b)
	}
}

func TestMembindHurtsBaroclinic(t *testing.T) {
	// Paper Table 13: membind degrades the (bandwidth-bound) baroclinic
	// phase on Longs.
	cl, _ := runPOP(t, "longs", 8, affinity.TwoMPILocalAlloc, 3)
	cm, _ := runPOP(t, "longs", 8, affinity.TwoMPIMembind, 3)
	if cm <= cl {
		t.Fatalf("membind baroclinic %.4f should be slower than localalloc %.4f", cm, cl)
	}
}

func TestBarotropicSensitiveToSysV(t *testing.T) {
	// The barotropic CG is allreduce-bound, so a slow lock sub-layer
	// shows up directly.
	run := func(impl *mpi.Impl) float64 {
		res, err := core.Run(core.Job{System: "longs", Ranks: 8,
			Scheme: affinity.OneMPILocalAlloc, Impl: impl}, func(r *mpi.Rank) {
			Run(r, Params{Steps: 3})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Max(MetricBarotropic)
	}
	usysv := run(mpi.LAM().WithSublayer(mpi.USysV()))
	sysv := run(mpi.LAM().WithSublayer(mpi.SysV()))
	if sysv < 1.5*usysv {
		t.Fatalf("SysV barotropic %.3f should far exceed USysV %.3f", sysv, usysv)
	}
}
