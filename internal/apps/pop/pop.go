// Package pop models the Parallel Ocean Program (Section 4.2, Tables
// 12-14): the x1 benchmark configuration (320x384 horizontal grid, 40
// vertical levels) split into its two characteristic phases. The
// baroclinic phase is a 3-D stencil sweep with nearest-neighbor halo
// exchanges (scales well); the barotropic phase is a 2-D implicit solve by
// conjugate gradients whose small allreduces make it latency sensitive.
package pop

import (
	"math"

	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Report keys.
const (
	MetricBaroclinic = "pop.baroclinic" // per-rank baroclinic time (s)
	MetricBarotropic = "pop.barotropic" // per-rank barotropic time (s)
)

// Params configures a simulated POP run. The defaults are the paper's x1
// benchmark: 320x384x40, 50 time steps (a 2-day simulation).
type Params struct {
	NX, NY, NZ int
	Steps      int
	// CGIters is the barotropic solver's iteration count per step
	// (x1 converges in roughly 150 iterations).
	CGIters int
}

func (p *Params) setDefaults() {
	if p.NX == 0 {
		p.NX, p.NY, p.NZ = 320, 384, 40
	}
	if p.Steps == 0 {
		p.Steps = 50
	}
	if p.CGIters == 0 {
		p.CGIters = 150
	}
}

// X1 returns the paper's benchmark configuration.
func X1() Params {
	var p Params
	p.setDefaults()
	return p
}

// tuning constants for the cost model.
const (
	// fields3D is the number of 3-D fields the baroclinic sweep streams
	// per step. The balance against flopsPerPoint3D is calibrated so a
	// local-memory run is (just) compute bound — hence the paper's
	// near-linear scaling — while membind's reduced remote stream rate
	// tips the phase into memory-bound territory (Table 13's ~2x).
	fields3D = 10
	// flopsPerPoint3D is the stencil cost per grid point per step.
	flopsPerPoint3D = 150
	// flopsPerPoint2D is the barotropic operator cost per 2-D point per
	// CG iteration.
	flopsPerPoint2D = 18
)

// Run executes the simulated POP time-stepping loop on one rank. Ranks
// decompose the horizontal grid into near-square tiles.
func Run(r *mpi.Rank, p Params) {
	p.setDefaults()
	size := float64(r.Size())
	nx, ny, nz := float64(p.NX), float64(p.NY), float64(p.NZ)

	pts3D := nx * ny * nz / size
	pts2D := nx * ny / size

	state := r.Alloc("pop.state", fields3D*8*pts3D)
	// The barotropic solver's working set splits into the CG vectors
	// (hot: reused every iteration, cache-resident once tiles shrink)
	// and the operator coefficients/right-hand side (cold: streamed).
	hot2d := r.Alloc("pop.2d.vec", 2*8*pts2D)
	cold2d := r.Alloc("pop.2d.coef", 4*8*pts2D)

	// Tile edge length for halo sizing (near-square decomposition).
	tileEdge := math.Sqrt(nx * ny / size)

	r.Barrier()
	start := r.Now()
	var tClinic, tTropic float64
	for step := 0; step < p.Steps; step++ {
		t0 := r.Now()
		r.Phase("baroclinic", func() {
			baroclinic(r, state, pts3D, tileEdge, nz)
		})
		t1 := r.Now()
		r.Phase("barotropic", func() {
			barotropic(r, hot2d, cold2d, pts2D, tileEdge, p.CGIters)
		})
		tTropic += r.Now() - t1
		tClinic += t1 - t0
	}
	_ = start
	r.Report(MetricBaroclinic, tClinic)
	r.Report(MetricBarotropic, tTropic)
}

// baroclinic is the 3-D phase: stencil sweeps over the state fields with
// one halo exchange per step.
func baroclinic(r *mpi.Rank, state *mem.Region, pts3D, tileEdge, nz float64) {
	// Halo exchange: four lateral faces of the 3-D tile.
	if r.Size() > 1 {
		n := r.Size()
		haloBytes := 4 * tileEdge * nz * 8 * 2 // two field groups
		up := (r.ID() + 1) % n
		down := (r.ID() - 1 + n) % n
		r.Sendrecv(up, haloBytes, down)
		r.Sendrecv(down, haloBytes, up)
	}
	// Stencil sweep: stream all fields, write the prognostic ones.
	r.Overlap(pts3D*flopsPerPoint3D, 0.28,
		mem.Access{Region: state, Pattern: mem.Stream, Bytes: state.Bytes},
		mem.Access{Region: state, Pattern: mem.StreamWrite, Bytes: state.Bytes / 3},
	)
}

// barotropic is the 2-D implicit solve: CG iterations, each a 9-point
// operator on the 2-D tile plus a halo swap and two global dot products.
// The tiny allreduces dominate at scale, which is why the paper calls this
// phase network-latency sensitive.
func barotropic(r *mpi.Rank, hot2d, cold2d *mem.Region, pts2D, tileEdge float64, iters int) {
	n := r.Size()
	for it := 0; it < iters; it++ {
		// 9-point operator + vector updates over the 2-D tile: sweep
		// the coefficients (cold) and the CG vectors (hot).
		r.Overlap(pts2D*flopsPerPoint2D, 0.3,
			mem.Access{Region: cold2d, Pattern: mem.Stream, Bytes: cold2d.Bytes},
			mem.Access{Region: hot2d, Pattern: mem.Stream, Bytes: hot2d.Bytes},
			mem.Access{Region: hot2d, Pattern: mem.StreamWrite, Bytes: hot2d.Bytes / 2},
		)
		if n > 1 {
			haloBytes := 4 * tileEdge * 8
			up := (r.ID() + 1) % n
			down := (r.ID() - 1 + n) % n
			r.Sendrecv(up, haloBytes, down)
			// Two dot products per CG iteration.
			r.Allreduce(8)
			r.Allreduce(8)
		}
	}
}
