package amber

import (
	"testing"

	"multicore/internal/affinity"
	"multicore/internal/core"
	"multicore/internal/mpi"
)

func TestBenchmarksMatchTable6(t *testing.T) {
	want := map[string]struct {
		atoms  int
		method Method
	}{
		"dhfr":      {22930, PME},
		"factor_ix": {90906, PME},
		"gb_cox2":   {18056, GB},
		"gb_mb":     {2492, GB},
		"JAC":       {23558, PME},
	}
	bs := Benchmarks()
	if len(bs) != len(want) {
		t.Fatalf("want %d benchmarks, got %d", len(want), len(bs))
	}
	for _, b := range bs {
		w, ok := want[b.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %q", b.Name)
		}
		if b.Atoms != w.atoms || b.Method != w.method {
			t.Fatalf("%s = %+v, want %+v", b.Name, b, w)
		}
	}
	if _, err := ByName("JAC"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func runAmber(t *testing.T, name, system string, ranks int, scheme affinity.Scheme) (total, fftT float64) {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Job{System: system, Ranks: ranks, Scheme: scheme}, func(r *mpi.Rank) {
		Run(r, Params{Bench: b, Steps: 4})
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Max(MetricTotalTime), res.Max(MetricFFTTime)
}

func TestJACSpeedupShapeDMZ(t *testing.T) {
	t1, _ := runAmber(t, "JAC", "dmz", 1, affinity.Default)
	t2, _ := runAmber(t, "JAC", "dmz", 2, affinity.Default)
	t4, _ := runAmber(t, "JAC", "dmz", 4, affinity.Default)
	s2, s4 := t1/t2, t1/t4
	// Paper Table 8: JAC on DMZ: 1.96x at 2, 3.63x at 4.
	if s2 < 1.7 || s2 > 2.1 {
		t.Fatalf("JAC 2-core speedup = %.2f, want ~1.96", s2)
	}
	if s4 < 3.0 || s4 > 4.1 {
		t.Fatalf("JAC 4-core speedup = %.2f, want ~3.6", s4)
	}
}

func TestPMESaturatesOnLongs16(t *testing.T) {
	t1, _ := runAmber(t, "JAC", "longs", 1, affinity.Default)
	t8, _ := runAmber(t, "JAC", "longs", 8, affinity.Default)
	t16, _ := runAmber(t, "JAC", "longs", 16, affinity.Default)
	s8, s16 := t1/t8, t1/t16
	// Paper Table 8: JAC on Longs: 6.22x at 8, 7.97x at 16 — the force
	// allreduce caps scaling.
	if s8 < 4.5 || s8 > 7.9 {
		t.Fatalf("JAC 8-core speedup = %.2f, want ~6.2", s8)
	}
	if s16 > 11 {
		t.Fatalf("JAC 16-core speedup = %.2f, should saturate well below 16", s16)
	}
	if s16 < s8 {
		t.Fatalf("16-core speedup %.2f fell below 8-core %.2f", s16, s8)
	}
}

func TestGBScalesNearLinearly(t *testing.T) {
	t1, _ := runAmber(t, "gb_mb", "longs", 1, affinity.Default)
	t16, _ := runAmber(t, "gb_mb", "longs", 16, affinity.Default)
	s16 := t1 / t16
	// Paper Table 8: gb_mb 14.93x at 16 cores.
	if s16 < 11 || s16 > 16.5 {
		t.Fatalf("gb_mb 16-core speedup = %.2f, want ~15", s16)
	}
}

func TestGBScalesBetterThanPME(t *testing.T) {
	p1, _ := runAmber(t, "JAC", "longs", 1, affinity.Default)
	p16, _ := runAmber(t, "JAC", "longs", 16, affinity.Default)
	g1, _ := runAmber(t, "gb_cox2", "longs", 1, affinity.Default)
	g16, _ := runAmber(t, "gb_cox2", "longs", 16, affinity.Default)
	if g1/g16 <= p1/p16 {
		t.Fatalf("GB speedup %.2f should exceed PME speedup %.2f", g1/g16, p1/p16)
	}
}

func TestFFTPhaseRespondsToMembind(t *testing.T) {
	// Paper Table 7: the JAC FFT phase degrades under membind on Longs.
	_, local := runAmber(t, "JAC", "longs", 8, affinity.TwoMPILocalAlloc)
	_, membind := runAmber(t, "JAC", "longs", 8, affinity.TwoMPIMembind)
	if membind <= local {
		t.Fatalf("membind FFT time %.4f should exceed localalloc %.4f", membind, local)
	}
}

func TestDefaultNearOptimalOnDMZ(t *testing.T) {
	// Paper: "the default option on the DMZ system is sufficient to
	// obtain near optimal runtimes".
	def, _ := runAmber(t, "JAC", "dmz", 4, affinity.Default)
	best, _ := runAmber(t, "JAC", "dmz", 4, affinity.TwoMPILocalAlloc)
	if def > 1.25*best {
		t.Fatalf("DMZ default %.4f should be within ~25%% of localalloc %.4f", def, best)
	}
}
