// Package amber models the AMBER 8 sander molecular-dynamics workloads the
// paper evaluates (Section 4.1, Tables 6-9): the five benchmark systems
// (dhfr, factor_ix, gb_cox2, gb_mb, JAC) using either the Particle Mesh
// Ewald (PME) method — direct-space pair interactions plus a reciprocal
// 3-D FFT — or the compute-bound Generalized Born (GB) method.
//
// sander's classic parallelization replicates coordinates: every step ends
// in an all-reduce of the force array, which is what limits PME scaling on
// many cores, while GB's O(N^2) compute keeps scaling near-linear.
package amber

import (
	"fmt"
	"math"

	"multicore/internal/kernels/fft"
	"multicore/internal/mem"
	"multicore/internal/mpi"
)

// Method is the MD force method.
type Method int

// PME uses Particle Mesh Ewald (direct + reciprocal FFT); GB uses the
// Generalized Born implicit-solvent model.
const (
	PME Method = iota
	GB
)

func (m Method) String() string {
	if m == GB {
		return "GB"
	}
	return "PME"
}

// Benchmark describes one AMBER benchmark system (paper Table 6).
type Benchmark struct {
	Name   string
	Atoms  int
	Method Method
}

// Benchmarks returns the paper's five AMBER benchmarks.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Name: "dhfr", Atoms: 22930, Method: PME},
		{Name: "factor_ix", Atoms: 90906, Method: PME},
		{Name: "gb_cox2", Atoms: 18056, Method: GB},
		{Name: "gb_mb", Atoms: 2492, Method: GB},
		{Name: "JAC", Atoms: 23558, Method: PME},
	}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("amber: unknown benchmark %q", name)
}

// Report keys.
const (
	MetricTotalTime = "amber.total" // per-rank total MD loop time (s)
	MetricFFTTime   = "amber.fft"   // per-rank time in the reciprocal FFT (s)
)

// Params configures a simulated sander run.
type Params struct {
	Bench Benchmark
	Steps int // MD steps (default 10)
}

// Tuning constants for the cost model.
const (
	// neighborsPerAtom is the average pair-list length within the
	// direct-space cutoff for explicit solvent (half-counted).
	neighborsPerAtom = 190
	// flopsPerPair is the cost of one nonbonded pair interaction
	// (distance, erfc, LJ terms).
	flopsPerPair = 55
	// gridPerAtom scales the PME mesh size with system size (~11 grid
	// points per atom reproduces JAC's 64^3 grid).
	gridPerAtom = 11
	// gbFlopsPerPair is the per-pair cost of the GB pairwise terms; GB
	// touches all pairs within a generous cutoff twice (radii + forces).
	gbNeighbors   = 420
	gbFlopsPerGBP = 90
)

// Run executes the simulated sander MD loop on one rank of an SPMD job.
func Run(r *mpi.Rank, p Params) {
	if p.Bench.Atoms <= 0 {
		panic("amber: benchmark has no atoms")
	}
	if p.Steps == 0 {
		p.Steps = 10
	}
	atoms := float64(p.Bench.Atoms)
	size := float64(r.Size())

	// Replicated coordinate/force arrays (sander's classic layout) plus
	// this rank's pair list slice.
	crd := r.Alloc("amber.crd", 24*atoms)
	frc := r.Alloc("amber.frc", 24*atoms)
	pairs := r.Alloc("amber.pairs", atoms*neighborsPerAtom*4/size)
	var grid, scratch *mem.Region
	gridPts := 0.0
	if p.Bench.Method == PME {
		gridPts = pow2Near(atoms * gridPerAtom)
		grid = r.Alloc("amber.grid", 16*gridPts/size)
		scratch = r.Alloc("amber.scratch", 16*gridPts/size)
	}

	r.Barrier()
	start := r.Now()
	fftTime := 0.0
	for step := 0; step < p.Steps; step++ {
		if p.Bench.Method == PME {
			directSpace(r, crd, frc, pairs, atoms, size)
			fftTime += reciprocal(r, grid, scratch, crd, gridPts, atoms, size)
		} else {
			gbStep(r, crd, frc, atoms, size)
		}
		// Force all-reduce over the replicated array, then integrate.
		if r.Size() > 1 {
			r.Allreduce(24 * atoms)
		}
		r.Overlap(9*atoms/size, 0.4,
			mem.Access{Region: crd, Pattern: mem.StreamWrite, Bytes: 24 * atoms / size})
	}
	r.Report(MetricTotalTime, r.Now()-start)
	if p.Bench.Method == PME {
		r.Report(MetricFFTTime, fftTime)
	}
}

// directSpace models the nonbonded pair loop over this rank's pair list.
func directSpace(r *mpi.Rank, crd, frc, pairs *mem.Region, atoms, size float64) {
	pairCount := atoms * neighborsPerAtom / size
	r.Overlap(pairCount*flopsPerPair, 0.30,
		// Pair list streams; coordinates are gathered but mostly cache
		// resident (they fit for these systems).
		mem.Access{Region: pairs, Pattern: mem.Stream, Bytes: pairs.Bytes},
		mem.Access{Region: crd, Pattern: mem.Random, Touches: pairCount / 8},
		mem.Access{Region: frc, Pattern: mem.Stream, Bytes: 24 * atoms / size},
	)
}

// reciprocal models the PME reciprocal-space part: charge spreading, a
// distributed 3-D FFT (forward + inverse) with transpose alltoalls, the
// k-space energy sweep, and force interpolation. It returns the time
// spent.
func reciprocal(r *mpi.Rank, grid, scratch, crd *mem.Region, gridPts, atoms, size float64) float64 {
	begin := r.Now()
	bytes := 16 * gridPts / size

	// Charge spreading: 4x4x4 B-spline per atom, scattered writes.
	r.Overlap(64*10*atoms/size, 0.25,
		mem.Access{Region: grid, Pattern: mem.Random, Touches: 64 * atoms / size / 8})

	// Forward + inverse 3-D FFT (2 transposes each).
	for pass := 0; pass < 2; pass++ {
		r.Overlap(fft.Flops(gridPts)/size, 0.22,
			mem.Access{Region: grid, Pattern: mem.Stream, Bytes: 2 * bytes},
			mem.Access{Region: scratch, Pattern: mem.StreamWrite, Bytes: 2 * bytes})
		if r.Size() > 1 {
			r.Alltoall(bytes / size)
			r.Alltoall(bytes / size)
		}
	}

	// Convolution with the influence function + force interpolation.
	r.Overlap(8*gridPts/size+64*8*atoms/size, 0.25,
		mem.Access{Region: scratch, Pattern: mem.Stream, Bytes: bytes},
		mem.Access{Region: crd, Pattern: mem.Random, Touches: 64 * atoms / size / 8})
	return r.Now() - begin
}

// gbStep models one Generalized Born step: effective Born radii plus
// pairwise GB forces — heavily compute bound.
func gbStep(r *mpi.Rank, crd, frc *mem.Region, atoms, size float64) {
	pairCount := atoms * gbNeighbors / size
	r.Overlap(2*pairCount*gbFlopsPerGBP, 0.45,
		mem.Access{Region: crd, Pattern: mem.Random, Touches: pairCount / 16},
		mem.Access{Region: frc, Pattern: mem.Stream, Bytes: 24 * atoms / size},
	)
}

// pow2Near rounds up to the next power of two (PME grids are chosen for
// FFT friendliness).
func pow2Near(v float64) float64 {
	return math.Pow(2, math.Ceil(math.Log2(v)))
}
