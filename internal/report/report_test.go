package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMarkdown(t *testing.T) {
	tab := New("Demo", "A", "B")
	tab.AddRow("1", "2")
	md := tab.Markdown()
	for _, want := range []string{"### Demo", "| A | B |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := New("", "name", "value")
	tab.AddRow(`with "quote"`, "a,b")
	csv := tab.CSV()
	if !strings.Contains(csv, `"with ""quote""","a,b"`) {
		t.Fatalf("csv quoting wrong:\n%s", csv)
	}
}

func TestTextAlignment(t *testing.T) {
	tab := New("T", "col", "x")
	tab.AddRow("longvalue", "1")
	txt := tab.Text()
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	// Header and row lines must be the same width up to trailing spaces.
	if len(lines) < 4 {
		t.Fatalf("text output too short:\n%s", txt)
	}
	if !strings.HasPrefix(lines[1], "col") {
		t.Fatalf("header line wrong: %q", lines[1])
	}
}

func TestShortRowsPadded(t *testing.T) {
	tab := New("", "a", "b", "c")
	tab.AddRow("1")
	if tab.Cell(0, 1) != "" || tab.Cell(0, 2) != "" {
		t.Fatal("short row not padded")
	}
}

func TestLongRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab := New("", "a")
	tab.AddRow("1", "2")
}

func TestNoColumnsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("empty")
}

func TestFFormat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		123.45: "123.5",
		12.345: "12.35",
		0.1234: "0.1234",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Fatalf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCSVRoundTripsRowCount(t *testing.T) {
	f := func(rows uint8) bool {
		tab := New("t", "a", "b")
		n := int(rows % 50)
		for i := 0; i < n; i++ {
			tab.AddRow("x", "y")
		}
		lines := strings.Count(tab.CSV(), "\n")
		return lines == n+1 && tab.NumRows() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChartRendersSeries(t *testing.T) {
	tab := New("curve", "x", "a", "b")
	tab.AddRow("1", "1.0", "2.0")
	tab.AddRow("2", "2.0", "-")
	tab.AddRow("3", "4.0", "8.0")
	out := tab.Chart(8)
	for _, want := range []string{"curve", "* = a", "o = b", "1 .. 3 (3 points)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartHandlesDegenerateInput(t *testing.T) {
	tab := New("flat", "x", "y")
	tab.AddRow("1", "5")
	if out := tab.Chart(4); !strings.Contains(out, "flat") {
		t.Fatalf("flat chart failed:\n%s", out)
	}
	empty := New("e", "x", "y")
	if out := empty.Chart(4); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %s", out)
	}
	dashes := New("d", "x", "y")
	dashes.AddRow("1", "-")
	if out := dashes.Chart(4); !strings.Contains(out, "no numeric data") {
		t.Fatalf("dash-only chart: %s", out)
	}
}

func TestChartTreatsInfCellsAsGaps(t *testing.T) {
	// An overflowed cell ("+Inf" from a ratio against a zero baseline)
	// must become a gap, not poison the row scaling: with Inf in the
	// min/max the scaled row index is NaN/Inf and the grid write panics.
	tab := New("inf", "x", "y")
	tab.AddRow("1", "+Inf")
	tab.AddRow("2", "3.0")
	tab.AddRow("3", "-Inf")
	out := tab.Chart(6)
	if !strings.Contains(out, "1 .. 3 (3 points)") {
		t.Fatalf("inf chart did not render:\n%s", out)
	}
	onlyInf := New("onlyinf", "x", "y")
	onlyInf.AddRow("1", "+Inf")
	if out := onlyInf.Chart(4); !strings.Contains(out, "no numeric data") {
		t.Fatalf("all-Inf chart should report no numeric data: %s", out)
	}
}

func TestBreakdownTable(t *testing.T) {
	tab := Breakdown("bd", []string{"compute", "wait"}, [][]float64{
		{3, 1},
		{2, 2},
	})
	out := tab.Text()
	for _, want := range []string{"bd", "Rank", "Total", "62.5%", "37.5%", "100%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown table missing %q:\n%s", want, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched category count should panic")
		}
	}()
	Breakdown("bad", []string{"a"}, [][]float64{{1, 2}})
}
