package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Chart renders a table's numeric columns as an ASCII line chart: the
// first column supplies x-axis labels, every other column is one series.
// Non-numeric cells (the paper's dashes) leave gaps. Figures regenerated
// by cmd/mcbench can be eyeballed in a terminal this way.
func (t *Table) Chart(height int) string {
	if height <= 0 {
		height = 16
	}
	nSeries := len(t.Columns) - 1
	if nSeries < 1 || t.NumRows() == 0 {
		return "(no data to chart)\n"
	}
	symbols := []byte("*o+x#@%&")

	// Parse values; track global min/max.
	vals := make([][]float64, nSeries)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for s := 0; s < nSeries; s++ {
		vals[s] = make([]float64, t.NumRows())
		for i := 0; i < t.NumRows(); i++ {
			v, err := strconv.ParseFloat(t.rows[i][s+1], 64)
			// Non-finite cells become gaps like non-numeric ones: an Inf
			// fed into min/max would make the row scaling NaN/Inf and
			// index the grid out of range.
			if err != nil || math.IsInf(v, 0) {
				vals[s][i] = math.NaN()
				continue
			}
			vals[s][i] = v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if math.IsInf(minV, 1) {
		return "(no numeric data to chart)\n"
	}
	if maxV == minV {
		maxV = minV + 1
	}

	width := t.NumRows()
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for s := 0; s < nSeries; s++ {
		sym := symbols[s%len(symbols)]
		for i, v := range vals[s] {
			if math.IsNaN(v) {
				continue
			}
			row := int(math.Round((maxV - v) / (maxV - minV) * float64(height-1)))
			if grid[row][i] == ' ' {
				grid[row][i] = sym
			} else {
				grid[row][i] = '=' // collision marker
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	label := func(v float64) string { return fmt.Sprintf("%10.3g", v) }
	for r, line := range grid {
		prefix := strings.Repeat(" ", 10)
		switch r {
		case 0:
			prefix = label(maxV)
		case height - 1:
			prefix = label(minV)
		case (height - 1) / 2:
			prefix = label((maxV + minV) / 2)
		}
		fmt.Fprintf(&b, "%s |%s|\n", prefix, string(line))
	}
	fmt.Fprintf(&b, "%s  %s .. %s (%d points)\n",
		strings.Repeat(" ", 10), t.rows[0][0], t.rows[t.NumRows()-1][0], t.NumRows())
	for s := 0; s < nSeries; s++ {
		fmt.Fprintf(&b, "%s  %c = %s\n", strings.Repeat(" ", 10), symbols[s%len(symbols)], t.Columns[s+1])
	}
	return b.String()
}
