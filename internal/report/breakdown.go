package report

import "fmt"

// Breakdown builds a per-rank time-attribution table: one row per rank
// with seconds per category and a total, plus a final row giving each
// category's share of the total across all ranks. perRank holds one
// category-value slice per rank, in the order of categories.
func Breakdown(title string, categories []string, perRank [][]float64) *Table {
	cols := append([]string{"Rank"}, categories...)
	cols = append(cols, "Total")
	t := New(title, cols...)
	sums := make([]float64, len(categories))
	grand := 0.0
	for i, cats := range perRank {
		if len(cats) != len(categories) {
			panic(fmt.Sprintf("report: rank %d has %d categories, want %d", i, len(cats), len(categories)))
		}
		cells := []string{fmt.Sprint(i)}
		total := 0.0
		for j, v := range cats {
			cells = append(cells, Seconds(v))
			sums[j] += v
			total += v
		}
		grand += total
		cells = append(cells, Seconds(total))
		t.AddRow(cells...)
	}
	if grand > 0 {
		cells := []string{"share"}
		for _, s := range sums {
			cells = append(cells, fmt.Sprintf("%.1f%%", 100*s/grand))
		}
		cells = append(cells, "100%")
		t.AddRow(cells...)
	}
	return t
}
