// Package report renders experiment results as aligned text, markdown, and
// CSV tables, with formatting helpers shared by the experiment runners.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("report: table needs at least one column")
	}
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows panic (they indicate a runner bug).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// Cell returns the cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Text renders the table with aligned columns for terminals.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeAligned := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeAligned(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.rows {
		writeAligned(row)
	}
	return b.String()
}

// F formats a float with sensible precision for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Seconds formats a duration cell in seconds.
func Seconds(v float64) string { return fmt.Sprintf("%.3f", v) }

// NA is the cell used where the paper shows a dash (infeasible
// configuration).
const NA = "-"

// Err is the cell used when a simulation failed (a panicked cell, a
// deadlock, a recorded failure from an earlier run). The paper has no
// such cells; we render them explicitly rather than aborting the sweep.
const Err = "ERR"
