package multicore_test

import (
	"math/rand"
	"testing"

	"multicore/internal/experiments"
	"multicore/internal/kernels/blas"
	"multicore/internal/kernels/cg"
	"multicore/internal/kernels/fft"
	"multicore/internal/kernels/hpl"
	"multicore/internal/kernels/rnda"
)

// benchExperiment runs one paper artifact at Quick scale per iteration.
// Every table and figure in the paper's evaluation has a benchmark here;
// run a single one with e.g. `go test -bench=BenchmarkFig10 -benchtime=1x`.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	r := experiments.NewRunner(nil, experiments.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := r.Run(e, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkFig2(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)   { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11") }
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12") }
func BenchmarkTable13(b *testing.B) { benchExperiment(b, "table13") }
func BenchmarkTable14(b *testing.B) { benchExperiment(b, "table14") }

// Ablations and extensions.
func BenchmarkAblateCoherence(b *testing.B)   { benchExperiment(b, "ablate-coherence") }
func BenchmarkAblateTopology(b *testing.B)    { benchExperiment(b, "ablate-topology") }
func BenchmarkAblateSublayer(b *testing.B)    { benchExperiment(b, "ablate-sublayer") }
func BenchmarkExtHybrid(b *testing.B)         { benchExperiment(b, "ext-hybrid") }
func BenchmarkExtLatency(b *testing.B)        { benchExperiment(b, "ext-latency") }
func BenchmarkExtOpenMP(b *testing.B)         { benchExperiment(b, "ext-openmp") }
func BenchmarkAblateCollectives(b *testing.B) { benchExperiment(b, "ablate-collectives") }
func BenchmarkAblateMigration(b *testing.B)   { benchExperiment(b, "ablate-migration") }
func BenchmarkExtNPB(b *testing.B)            { benchExperiment(b, "ext-npb") }
func BenchmarkExtCluster(b *testing.B)        { benchExperiment(b, "ext-cluster") }

// Real-numeric kernel benchmarks: these measure the host running the
// actual math (the correctness-side implementations), not the simulator.

func BenchmarkRealDGEMMBlocked(b *testing.B) {
	const n = 128
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i], bb[i] = rng.Float64(), rng.Float64()
	}
	b.SetBytes(3 * 8 * n * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.DgemmBlocked(1, a, bb, 0, c, n, 32)
	}
}

func BenchmarkRealFFT(b *testing.B) {
	const n = 1 << 12
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.SetBytes(16 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.Forward(x)
	}
}

func BenchmarkRealCGSolve(b *testing.B) {
	m := cg.RandomSPD(500, 8, 42)
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg.Solve(m, rhs, 1e-8, 1000)
	}
}

func BenchmarkRealLUSolve(b *testing.B) {
	const n = 100
	rng := rand.New(rand.NewSource(3))
	a0 := make([]float64, n*n)
	for i := range a0 {
		a0[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a0[i*n+i] += float64(n)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := append([]float64(nil), a0...)
		bb := append([]float64(nil), rhs...)
		if _, err := hpl.Solve(a, bb, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealGUPS(b *testing.B) {
	t := rnda.NewTable(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Update(1, 1<<16)
	}
}
