module multicore

go 1.22
